package wire

import (
	"math"
	"testing"
)

// partialFor carves the shard-s partial out of a full accumulator, the
// gather layout the core tier produces: Sum aliases acc[lo:hi].
func partialFor(acc []float64, shards, s int) *PartialAggregate {
	n := len(acc)
	size := (n + shards - 1) / shards
	lo := s * size
	if lo > n {
		lo = n
	}
	hi := lo + size
	if hi > n {
		hi = n
	}
	return &PartialAggregate{
		Round: 3, Version: 7, ShardID: uint32(s), Shards: uint32(shards),
		Lo: uint32(lo), Hi: uint32(hi), Weight: 0.75, Count: 4,
		Sum: acc[lo:hi],
	}
}

func testAcc(n int) []float64 {
	acc := make([]float64, n)
	for i := range acc {
		acc[i] = float64(i)*1.5 - 3
	}
	return acc
}

func TestPartialAggregateRoundTrip(t *testing.T) {
	p := partialFor(testAcc(100), 4, 1)
	e := NewEncoder(nil)
	p.Marshal(e)

	var got PartialAggregate
	if err := got.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Round != p.Round || got.Version != p.Version || got.ShardID != p.ShardID ||
		got.Shards != p.Shards || got.Lo != p.Lo || got.Hi != p.Hi ||
		got.Weight != p.Weight || got.Count != p.Count {
		t.Fatalf("header mismatch: got %+v want %+v", got, *p)
	}
	if len(got.Sum) != len(p.Sum) {
		t.Fatalf("sum length %d, want %d", len(got.Sum), len(p.Sum))
	}
	for i := range got.Sum {
		if math.Float64bits(got.Sum[i]) != math.Float64bits(p.Sum[i]) {
			t.Fatalf("sum[%d] not bit-identical", i)
		}
	}

	// Reuse: decoding a second message into the same struct must reuse the
	// Sum capacity and leak nothing from the first.
	small := partialFor(testAcc(20), 4, 0)
	small.Count = 0
	e2 := NewEncoder(nil)
	small.Marshal(e2)
	before := cap(got.Sum)
	if err := got.Unmarshal(NewDecoder(e2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if cap(got.Sum) != before {
		t.Errorf("reused decode reallocated Sum: cap %d -> %d", before, cap(got.Sum))
	}
	if got.Count != 0 || got.ShardID != 0 {
		t.Errorf("stale fields survived reuse: %+v", got)
	}
}

// TestPartialAggregateDecodeValidates: a malformed partial (range/value
// mismatch) must not survive decoding into a reduce.
func TestPartialAggregateDecodeValidates(t *testing.T) {
	p := partialFor(testAcc(40), 2, 0)
	p.Hi = p.Lo + 3 // lies about the range
	e := NewEncoder(nil)
	p.Marshal(e)
	var got PartialAggregate
	if err := got.Unmarshal(NewDecoder(e.Bytes())); err == nil {
		t.Fatal("range/value mismatch decoded without error")
	}
}

// TestPartialAggregateMergeAssociative pins the property the tree-reduce
// relies on: merging adjacent partials is concatenation, so every
// bracketing of the reduce produces byte-identical results.
func TestPartialAggregateMergeAssociative(t *testing.T) {
	const n, shards = 103, 4
	acc := testAcc(n)

	// fresh returns deep (non-aliasing) copies so each bracketing merges
	// independent buffers.
	fresh := func() []*PartialAggregate {
		ps := make([]*PartialAggregate, shards)
		for s := range ps {
			p := partialFor(acc, shards, s)
			p.Sum = append([]float64(nil), p.Sum...)
			ps[s] = p
		}
		return ps
	}

	// ((0+1)+(2+3)) — the balanced tree.
	a := fresh()
	if err := a[0].Merge(a[1]); err != nil {
		t.Fatal(err)
	}
	if err := a[2].Merge(a[3]); err != nil {
		t.Fatal(err)
	}
	if err := a[0].Merge(a[2]); err != nil {
		t.Fatal(err)
	}
	// (((0+1)+2)+3) — the left-leaning chain.
	b := fresh()
	for s := 1; s < shards; s++ {
		if err := b[0].Merge(b[s]); err != nil {
			t.Fatal(err)
		}
	}
	for _, root := range []*PartialAggregate{a[0], b[0]} {
		if root.Lo != 0 || int(root.Hi) != n || len(root.Sum) != n {
			t.Fatalf("reduce root covers [%d,%d) with %d values, want [0,%d)", root.Lo, root.Hi, len(root.Sum), n)
		}
		for i := range acc {
			if math.Float64bits(root.Sum[i]) != math.Float64bits(acc[i]) {
				t.Fatalf("reduced sum[%d] differs from the flat accumulator", i)
			}
		}
	}
}

// TestPartialAggregateMergeAliased: when partials alias one contiguous
// accumulator (the in-process gather layout), a merge is a reslice — no
// copying, no allocation.
func TestPartialAggregateMergeAliased(t *testing.T) {
	const n, shards = 96, 4
	acc := testAcc(n)
	ps := make([]*PartialAggregate, shards)
	for s := range ps {
		ps[s] = partialFor(acc, shards, s)
	}
	if avg := testing.AllocsPerRun(10, func() {
		for s := range ps {
			*ps[s] = *partialFor(acc, shards, s) // rebuild headers in place
		}
		for s := 1; s < shards; s++ {
			if err := ps[0].Merge(ps[s]); err != nil {
				t.Fatal(err)
			}
		}
	}); avg > 4 { // partialFor itself allocates the struct; Merge must not add to it
		t.Fatalf("aliased merge allocates %.1f objects/op", avg)
	}
	if &ps[0].Sum[0] != &acc[0] || len(ps[0].Sum) != n {
		t.Fatal("aliased merge did not reslice the shared accumulator")
	}
}

// TestPartialAggregateMergeRejects covers the invariants a reduce must
// enforce before concatenating.
func TestPartialAggregateMergeRejects(t *testing.T) {
	acc := testAcc(64)
	base := func() (*PartialAggregate, *PartialAggregate) {
		a := partialFor(acc, 2, 0)
		b := partialFor(acc, 2, 1)
		return a, b
	}
	if a, b := base(); a.Merge(b) != nil {
		t.Fatal("adjacent same-fold partials rejected")
	}
	a, b := base()
	b.Round++
	if a.Merge(b) == nil {
		t.Error("cross-round merge accepted")
	}
	a, b = base()
	b.Lo++
	b.Sum = b.Sum[1:]
	if a.Merge(b) == nil {
		t.Error("non-adjacent merge accepted")
	}
	a, b = base()
	b.Weight *= 1.0000001
	if a.Merge(b) == nil {
		t.Error("weight-mismatched merge accepted")
	}
	a, b = base()
	b.Shards = 4
	if a.Merge(b) == nil {
		t.Error("tier-width-mismatched merge accepted")
	}
	a, b = base()
	b.Count++
	if a.Merge(b) == nil {
		t.Error("count-mismatched merge accepted")
	}
}

func TestPartialAggregateValidate(t *testing.T) {
	ok := partialFor(testAcc(32), 2, 1)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := partialFor(testAcc(32), 2, 1)
	bad.ShardID = 2
	if bad.Validate() == nil {
		t.Error("shard id beyond tier width accepted")
	}
	bad = partialFor(testAcc(32), 2, 1)
	bad.Shards = 0
	if bad.Validate() == nil {
		t.Error("zero tier width accepted")
	}
	bad = partialFor(testAcc(32), 2, 1)
	bad.Sum = bad.Sum[:len(bad.Sum)-1]
	if bad.Validate() == nil {
		t.Error("short sum accepted")
	}
}
