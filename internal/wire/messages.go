package wire

import "fmt"

// Kind discriminates the RPC message types exchanged between server and
// clients, carried in the transport frame header.
type Kind uint8

// Message kinds.
const (
	KindJoin        Kind = 1 // client → server: registration
	KindJoinAck     Kind = 2 // server → client: run configuration
	KindGlobalModel Kind = 3 // server → client: weights for the next round
	KindLocalUpdate Kind = 4 // client → server: trained local parameters
	KindShutdown    Kind = 5 // server → client: training complete
	// KindPartialAggregate is a shard → reducer message of the hierarchical
	// aggregation tier: one shard's folded range of the accumulator.
	KindPartialAggregate Kind = 6
	// KindModelChunk carries one fixed-size slice of a model vector — the
	// streaming path's unit of transfer for models too large to ride one
	// message (see ModelChunk).
	KindModelChunk Kind = 7
	// KindChunkAck acknowledges one received chunk back to its sender, the
	// flow-control/retry signal of the streaming path.
	KindChunkAck Kind = 8
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "Join"
	case KindJoinAck:
		return "JoinAck"
	case KindGlobalModel:
		return "GlobalModel"
	case KindLocalUpdate:
		return "LocalUpdate"
	case KindShutdown:
		return "Shutdown"
	case KindPartialAggregate:
		return "PartialAggregate"
	case KindModelChunk:
		return "ModelChunk"
	case KindChunkAck:
		return "ChunkAck"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Join is the registration message a client sends on connect. Resume marks
// a reconnect: the client held a session before (it crashed, or its
// connection blipped) and asks the server to splice this connection into
// the existing session instead of treating it as a fresh participant —
// the session-resumption half of the ClientGoodbye/rejoin handshake.
type Join struct {
	ClientID uint32
	Name     string
	Resume   bool
	// TenantID names the federation this client belongs to on a
	// multi-tenant server (the FL-as-a-service host). The zero value is
	// the default tenant, so a pre-tenancy client joins tenant 0 and a
	// pre-tenancy server never sees the field at all — the header is
	// backward-compatible in both directions. ClientID is tenant-local.
	TenantID uint32
}

// Marshal encodes m.
func (m *Join) Marshal(e *Encoder) {
	e.Uint64(1, uint64(m.ClientID))
	e.String(2, m.Name)
	if m.Resume {
		e.Bool(3, m.Resume)
	}
	if m.TenantID > 0 {
		e.Uint64(4, uint64(m.TenantID))
	}
}

// Unmarshal decodes m, ignoring unknown fields.
func (m *Join) Unmarshal(d *Decoder) error {
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.ClientID = uint32(v)
		case 2:
			s, err := d.String()
			if err != nil {
				return err
			}
			m.Name = s
		case 3:
			v, err := d.Bool()
			if err != nil {
				return err
			}
			m.Resume = v
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.TenantID = uint32(v)
		default:
			if err := d.Skip(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// JoinAck is the server's reply carrying run configuration.
type JoinAck struct {
	NumClients uint32
	Rounds     uint32
	ModelSize  uint64
}

// Marshal encodes m.
func (m *JoinAck) Marshal(e *Encoder) {
	e.Uint64(1, uint64(m.NumClients))
	e.Uint64(2, uint64(m.Rounds))
	e.Uint64(3, m.ModelSize)
}

// Unmarshal decodes m, ignoring unknown fields.
func (m *JoinAck) Unmarshal(d *Decoder) error {
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.NumClients = uint32(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.Rounds = uint32(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.ModelSize = v
		default:
			if err := d.Skip(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// GlobalModel carries the global weights w^{t+1} from server to clients.
// Rho, when positive, is the penalty ρ_t the clients must use this round —
// the channel through which the adaptive-penalty extension (paper §V,
// item 2) keeps server and clients consistent. Version is the aggregation
// counter of the model (how many server updates produced it); clients echo
// it back as LocalUpdate.BaseVersion so the server can attribute staleness
// under buffered/asynchronous scheduling. CohortSize reports how many
// clients were scheduled for the round that this model opens.
type GlobalModel struct {
	Round      uint32
	Weights    []float64
	Final      bool
	Rho        float64
	Version    uint64
	CohortSize uint32
	// WeightsP, when non-nil, carries the weights in a compressed payload
	// encoding instead of the dense Weights field (downlink compression).
	// Receivers densify it back into Weights before training.
	WeightsP *Payload
}

// Reset clears m for reuse, keeping the weight buffer's capacity. The
// payload pointer is dropped (not recycled): a stale payload surviving
// into a message that omits field 7 would densify last round's weights.
func (m *GlobalModel) Reset() {
	*m = GlobalModel{Weights: m.Weights[:0]}
}

// Marshal encodes m. When WeightsP is set it replaces the dense Weights
// block on the wire, so byte accounting reflects the compressed size.
func (m *GlobalModel) Marshal(e *Encoder) {
	e.Uint64(1, uint64(m.Round))
	if m.WeightsP == nil {
		e.Doubles(2, m.Weights)
	}
	e.Bool(3, m.Final)
	if m.Rho > 0 {
		e.Float64(4, m.Rho)
	}
	if m.Version > 0 {
		e.Uint64(5, m.Version)
	}
	if m.CohortSize > 0 {
		e.Uint64(6, uint64(m.CohortSize))
	}
	if m.WeightsP != nil {
		m.WeightsP.EncodeInto(e, 7)
	}
}

// Unmarshal decodes m, ignoring unknown fields. m is Reset first, so a
// struct reused across messages cannot carry a field the new message
// omits; buffers present in both messages reuse their capacity.
func (m *GlobalModel) Unmarshal(d *Decoder) error {
	m.Reset()
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.Round = uint32(v)
		case 2:
			v, err := d.DoublesInto(m.Weights)
			if err != nil {
				return err
			}
			m.Weights = v
		case 3:
			v, err := d.Bool()
			if err != nil {
				return err
			}
			m.Final = v
		case 4:
			v, err := d.Float64()
			if err != nil {
				return err
			}
			m.Rho = v
		case 5:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.Version = v
		case 6:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.CohortSize = uint32(v)
		case 7:
			b, err := d.BytesField()
			if err != nil {
				return err
			}
			m.WeightsP = &Payload{}
			if err := m.WeightsP.Unmarshal(NewDecoder(b)); err != nil {
				return err
			}
		default:
			if err := d.Skip(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// LocalUpdate carries a client's trained parameters to the server. Primal
// is always present (z_p); Dual (λ_p) is populated only by algorithms that
// communicate dual information (ICEADMM) — its absence is precisely
// IIADMM's communication saving.
//
// BaseVersion echoes the GlobalModel.Version the client trained from, the
// staleness anchor of the buffered/asynchronous schedulers. InCohort is
// true when the client actually trained as a scheduled participant; the
// legacy client-side partial-participation path sets it false on its
// zero-weight echoes, making out-of-cohort contributions attributable at
// the server.
type LocalUpdate struct {
	ClientID    uint32
	Round       uint32
	NumSamples  uint64
	Primal      []float64
	Dual        []float64
	Epsilon     float64 // privacy budget used for this release (+Inf = none)
	ComputeSec  float64 // client-side local update time, for instrumentation
	BaseVersion uint64
	InCohort    bool
	// PrimalP, when non-nil, carries the primal in a compressed payload
	// encoding instead of the dense Primal field — the output of the update
	// pipeline's compression stages. The server inverts it back to a dense
	// Primal before the update reaches an Aggregator.
	PrimalP *Payload
	// Control marks this message as a lifecycle signal riding the update
	// channel rather than training data. ControlGoodbye announces a
	// departure; it satisfies the client's update obligation for the round
	// so the server releases the barrier without waiting out a timeout.
	Control uint8
	// RejoinRound, on a goodbye, leases a return slot: the client promises
	// to be reachable again from that round on (0 = gone for good). The
	// scheduler excludes the client until the lease expires.
	RejoinRound uint32
	// TenantID names the federation this update belongs to on a
	// multi-tenant server; ClientID is tenant-local. Zero is the default
	// tenant (backward-compatible: pre-tenancy messages omit the field).
	// A tenant-demuxing transport validates it against the tenant that
	// owns the carrying connection/topic and rejects mismatches.
	TenantID uint32
}

// Control values carried by LocalUpdate.Control.
const (
	ControlNone    uint8 = 0 // ordinary training update
	ControlGoodbye uint8 = 1 // departure announcement (ClientGoodbye)
)

// Goodbye builds the ClientGoodbye message for the given client and round.
// rejoinRound > 0 leases a return at that round; 0 announces a permanent
// departure. The message carries no model payload and zero weight, so an
// aggregator that sees one by mistake folds nothing.
func Goodbye(client, round uint32, rejoinRound uint32) *LocalUpdate {
	return &LocalUpdate{
		ClientID:    client,
		Round:       round,
		Control:     ControlGoodbye,
		RejoinRound: rejoinRound,
	}
}

// Reset clears m for reuse, keeping the primal and dual buffers'
// capacity. The payload pointer is dropped for the same reason as
// GlobalModel.Reset: absent-field staleness is a correctness bug, and
// the dense vectors are the hot path worth recycling.
func (m *LocalUpdate) Reset() {
	*m = LocalUpdate{Primal: m.Primal[:0], Dual: m.Dual[:0]}
}

// Marshal encodes m. An empty Dual is omitted entirely, and a compressed
// PrimalP replaces the dense Primal block, so the byte size reflects the
// algorithm's (and pipeline's) true communication volume.
func (m *LocalUpdate) Marshal(e *Encoder) {
	e.Uint64(1, uint64(m.ClientID))
	e.Uint64(2, uint64(m.Round))
	e.Uint64(3, m.NumSamples)
	if m.PrimalP == nil {
		e.Doubles(4, m.Primal)
	}
	if len(m.Dual) > 0 {
		e.Doubles(5, m.Dual)
	}
	e.Float64(6, m.Epsilon)
	e.Float64(7, m.ComputeSec)
	if m.BaseVersion > 0 {
		e.Uint64(8, m.BaseVersion)
	}
	if m.InCohort {
		e.Bool(9, m.InCohort)
	}
	if m.PrimalP != nil {
		m.PrimalP.EncodeInto(e, 10)
	}
	if m.Control != ControlNone {
		e.Uint64(11, uint64(m.Control))
	}
	if m.RejoinRound > 0 {
		e.Uint64(12, uint64(m.RejoinRound))
	}
	if m.TenantID > 0 {
		e.Uint64(13, uint64(m.TenantID))
	}
}

// Unmarshal decodes m, ignoring unknown fields. m is Reset first (see
// GlobalModel.Unmarshal): reused structs reuse buffer capacity but can
// never leak a previous message's fields.
func (m *LocalUpdate) Unmarshal(d *Decoder) error {
	m.Reset()
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.ClientID = uint32(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.Round = uint32(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.NumSamples = v
		case 4:
			v, err := d.DoublesInto(m.Primal)
			if err != nil {
				return err
			}
			m.Primal = v
		case 5:
			v, err := d.DoublesInto(m.Dual)
			if err != nil {
				return err
			}
			m.Dual = v
		case 6:
			v, err := d.Float64()
			if err != nil {
				return err
			}
			m.Epsilon = v
		case 7:
			v, err := d.Float64()
			if err != nil {
				return err
			}
			m.ComputeSec = v
		case 8:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.BaseVersion = v
		case 9:
			v, err := d.Bool()
			if err != nil {
				return err
			}
			m.InCohort = v
		case 10:
			b, err := d.BytesField()
			if err != nil {
				return err
			}
			m.PrimalP = &Payload{}
			if err := m.PrimalP.Unmarshal(NewDecoder(b)); err != nil {
				return err
			}
		case 11:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			if v > 255 {
				return fmt.Errorf("wire: control value %d out of range", v)
			}
			m.Control = uint8(v)
		case 12:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.RejoinRound = uint32(v)
		case 13:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.TenantID = uint32(v)
		default:
			if err := d.Skip(w); err != nil {
				return err
			}
		}
	}
	return nil
}
