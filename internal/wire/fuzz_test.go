package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// The fuzz targets pin the codec's central robustness contract: no input,
// however truncated or adversarial, may panic a decoder — malformed
// messages must surface ErrTruncated/ErrBadTag/ErrOverflow (or a
// formatting error) instead. `go test` exercises the seed corpus; run
// `go test -fuzz=FuzzDecodeLocalUpdate ./internal/wire` to explore.

// seedMessages returns encodings of representative messages, used to seed
// every decode fuzzer with structurally valid bytes worth mutating.
func seedMessages() [][]byte {
	var out [][]byte
	add := func(m interface{ Marshal(*Encoder) }) {
		e := NewEncoder(nil)
		m.Marshal(e)
		out = append(out, append([]byte(nil), e.Bytes()...))
	}
	add(&Join{ClientID: 7, Name: "client-7"})
	add(&Join{ClientID: 0, TenantID: 3, Name: "t3-client-0"})
	add(&JoinAck{NumClients: 203, Rounds: 50, ModelSize: 123456})
	add(&GlobalModel{Round: 3, Weights: []float64{1, -2, math.Pi}, Rho: 2.5, Version: 9, CohortSize: 4})
	add(&LocalUpdate{
		ClientID: 1, Round: 2, NumSamples: 64,
		Primal: []float64{0.5, -0.5}, Dual: []float64{1, 1},
		Epsilon: math.Inf(1), ComputeSec: 0.25, BaseVersion: 8, InCohort: true,
	})
	add(&LocalUpdate{
		ClientID: 2, Round: 1, NumSamples: 16, TenantID: 9,
		Primal: []float64{1}, Epsilon: math.Inf(1), InCohort: true,
	})
	// Compressed payloads: one of each encoding, plus messages carrying
	// them, so the fuzzers mutate structurally valid compressed frames.
	add(&Payload{Enc: EncDense, Dim: 2, Dense: []float64{1, -2}})
	add(&Payload{Enc: EncSparse, Dim: 8, Indices: []uint32{1, 5}, Values: []float64{0.5, -4}})
	add(&Payload{Enc: EncQuant, Dim: 3, Scale: 0.25, Offset: -1, Bits: 8, Codes: []byte{0, 128, 255}})
	add(&Payload{Enc: EncFloat16, Dim: 2, Codes: []byte{0x00, 0x3c, 0x00, 0xc0}})
	add(&Payload{Enc: EncSubset, Dim: 10, Indices: []uint32{2, 7}, Values: []float64{0.25, -1}})
	add(&LocalUpdate{
		ClientID: 2, Round: 3, NumSamples: 32, Epsilon: 0.5, InCohort: true,
		PrimalP: &Payload{Enc: EncSparse, Dim: 6, Indices: []uint32{0, 3}, Values: []float64{1, 2}},
	})
	add(&LocalUpdate{
		ClientID: 5, Round: 1, NumSamples: 16, Epsilon: math.Inf(1), InCohort: true,
		PrimalP: &Payload{Enc: EncSubset, Dim: 12, Indices: []uint32{0, 4, 11}, Values: []float64{1, 2, 3}},
	})
	add(&GlobalModel{
		Round: 4, Version: 2,
		WeightsP: &Payload{Enc: EncQuant, Dim: 2, Scale: 1, Offset: 0, Bits: 8, Codes: []byte{7, 9}},
	})
	add(&PartialAggregate{
		Round: 2, Version: 3, ShardID: 1, Shards: 4, Lo: 8, Hi: 11,
		Weight: 1, Count: 2, Sum: []float64{0.5, -0.5, 2},
	})
	add(&ModelChunk{
		ClientID: 3, Round: 2, Version: 7, Index: 1, Count: 4,
		Lo: 2, Hi: 4, Dim: 8, NumSamples: 64,
		Payload: &Payload{Enc: EncDense, Dim: 2, Dense: []float64{1.5, -2.5}},
	})
	add(&ModelChunk{
		ClientID: 1, Round: 1, Index: 0, Count: 1, Lo: 0, Hi: 2, Dim: 2,
		Payload: &Payload{Enc: EncFloat16, Dim: 2, Codes: []byte{0x00, 0x3c, 0x00, 0xc0}},
	})
	add(&ChunkAck{ClientID: 3, Round: 2, Index: 1})
	add(&JournalRecord{Seq: 5, Op: JournalRoundStart, Round: 2, Version: 1, Cohort: []uint32{0, 2, 5}})
	add(&JournalRecord{Seq: 6, Op: JournalAdmit, Round: 2, ClientID: 2, NumSamples: 64, BaseVersion: 1, Primal: []float64{0.5, -1.5}})
	add(&JournalRecord{Seq: 7, Op: JournalLedger, Round: 2, ClientID: 5, LedgerOp: LedgerStrike, Param: 2})
	add(&JournalRecord{Seq: 8, Op: JournalCommit, Round: 2, Version: 2, Weights: []float64{1, 2, 3}})
	add(&JournalCheckpoint{
		Seq: 8, NextRound: 3, Version: 2, Weights: []float64{1, 2, 3},
		DepartedUntil: []uint32{0, 0, 4}, BenchedUntil: []uint32{0, 3, 0},
		Strikes: []uint32{0, 1, 0}, AwaitRejoin: []uint32{0, 0, 1},
		Rejoined: 1, TimedOut: 2,
	})
	return out
}

// FuzzDecodePayload: no payload bytes, however truncated or adversarial,
// may panic the decoder — and any payload that survives decoding must be
// structurally valid, so Densify can never panic on it either.
func FuzzDecodePayload(f *testing.F) {
	for _, b := range seedMessages() {
		f.Add(b)
	}
	f.Add([]byte{0x08, 0x01})             // sparse with nothing else
	f.Add([]byte{0x08, 0x02, 0x10, 0xff}) // quant with a huge dim
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Payload
		if err := p.Unmarshal(NewDecoder(data)); err != nil {
			return
		}
		// Decoded OK ⇒ validated ⇒ densify must succeed without panicking
		// (cap the dimension so the fuzzer cannot allocate gigabytes). The
		// one exception is the subset encoding, which has no base vector to
		// densify against: it must refuse with the typed sentinel, never
		// panic or hand back garbage.
		if p.Dim > 1<<20 {
			return
		}
		if _, err := p.Densify(nil); err != nil {
			if p.Enc == EncSubset && errors.Is(err, ErrBadPayload) {
				return
			}
			t.Fatalf("validated payload failed to densify: %v", err)
		}
	})
}

// FuzzDecodePartialAggregate: no partial-aggregate bytes may panic the
// decoder, and anything that survives decoding is structurally valid —
// the contract that keeps a malformed partial out of a tree-reduce.
func FuzzDecodePartialAggregate(f *testing.F) {
	for _, b := range seedMessages() {
		f.Add(b)
	}
	f.Add([]byte{0x20, 0x00})       // zero tier width
	f.Add([]byte{0x28, 0xff, 0x01}) // lo without hi: inverted range
	f.Fuzz(func(t *testing.T, data []byte) {
		var p PartialAggregate
		if err := p.Unmarshal(NewDecoder(data)); err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoded partial fails its own validation: %v", err)
		}
	})
}

// FuzzDecodeModelChunk: the streaming decode paths (ModelChunk and
// ChunkAck) must return typed errors on adversarial bytes — never panic,
// never over-allocate past the declared payload, and never hand back a
// chunk whose payload range disagrees with its header.
func FuzzDecodeModelChunk(f *testing.F) {
	for _, b := range seedMessages() {
		f.Add(b)
	}
	f.Add([]byte{0x28, 0x00})       // zero sequence length
	f.Add([]byte{0x40, 0xff, 0xff}) // huge dim with no payload
	f.Fuzz(func(t *testing.T, data []byte) {
		var c ModelChunk
		if err := c.Unmarshal(NewDecoder(data)); err == nil {
			if err := c.Validate(); err != nil {
				t.Fatalf("decoded chunk fails its own validation: %v", err)
			}
			if c.Payload.Enc == EncSubset {
				t.Fatal("subset payload survived chunk validation")
			}
		}
		var a ChunkAck
		_ = a.Unmarshal(NewDecoder(data)) // must not panic
	})
}

func FuzzDecodeLocalUpdate(f *testing.F) {
	for _, b := range seedMessages() {
		f.Add(b)
	}
	f.Add([]byte{0x08})       // lone tag, truncated payload
	f.Add([]byte{0x22, 0xff}) // length-delimited field announcing too much
	f.Fuzz(func(t *testing.T, data []byte) {
		var u LocalUpdate
		_ = u.Unmarshal(NewDecoder(data)) // must not panic
	})
}

// FuzzDecodeJournalRecord: the recovery path decodes journal bytes that a
// crash may have mangled arbitrarily — no input may panic, and any record
// that survives decoding carries a valid op discriminator (the replay
// switch dispatches on it unchecked).
func FuzzDecodeJournalRecord(f *testing.F) {
	for _, b := range seedMessages() {
		f.Add(b)
	}
	f.Add([]byte{0x10, 0x09}) // op out of range
	f.Add([]byte{0x58, 0x07}) // ledger op out of range
	f.Fuzz(func(t *testing.T, data []byte) {
		var rec JournalRecord
		if err := rec.Unmarshal(NewDecoder(data)); err == nil {
			if rec.Op < JournalRoundStart || rec.Op > JournalCommit {
				t.Fatalf("decoded record carries invalid op %d", rec.Op)
			}
		}
		var cp JournalCheckpoint
		if err := cp.Unmarshal(NewDecoder(data)); err == nil {
			n := len(cp.DepartedUntil)
			if len(cp.BenchedUntil) != n || len(cp.Strikes) != n || len(cp.AwaitRejoin) != n {
				t.Fatal("decoded checkpoint with disagreeing membership arrays")
			}
		}
	})
}

func FuzzDecodeGlobalModel(f *testing.F) {
	for _, b := range seedMessages() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m GlobalModel
		_ = m.Unmarshal(NewDecoder(data))
	})
}

// FuzzDecodeJoinAndAck additionally pins the tenancy contract: whatever
// TenantID a decoded Join carries must survive a re-encode bit for bit
// (the rpc server routes on it before acking), and a zero TenantID must
// encode to the exact pre-tenancy bytes — that omission is what makes
// every pre-tenancy client a tenant-0 client byte for byte.
func FuzzDecodeJoinAndAck(f *testing.F) {
	for _, b := range seedMessages() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var j Join
		if err := j.Unmarshal(NewDecoder(data)); err == nil {
			e := NewEncoder(nil)
			j.Marshal(e)
			var j2 Join
			if err := j2.Unmarshal(NewDecoder(e.Bytes())); err != nil {
				t.Fatalf("re-decode of re-encoded join: %v", err)
			}
			if j2.TenantID != j.TenantID || j2.ClientID != j.ClientID {
				t.Fatalf("join address drifted across re-encode: (%d,%d) -> (%d,%d)",
					j.TenantID, j.ClientID, j2.TenantID, j2.ClientID)
			}
		}
		var a JoinAck
		_ = a.Unmarshal(NewDecoder(data))
	})
}

// FuzzTenantIDRoundTrip: every (tenant, client) address round-trips
// through Join and LocalUpdate, and tenant 0 encodes to the identical
// bytes as a message that never heard of tenancy.
func FuzzTenantIDRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(1), uint32(7))
	f.Add(uint32(math.MaxUint32), uint32(math.MaxUint32))
	f.Fuzz(func(t *testing.T, tenant, client uint32) {
		j := Join{ClientID: client, TenantID: tenant, Name: "c"}
		e := NewEncoder(nil)
		j.Marshal(e)
		var gotJ Join
		if err := gotJ.Unmarshal(NewDecoder(e.Bytes())); err != nil {
			t.Fatalf("join round-trip: %v", err)
		}
		if gotJ.TenantID != tenant || gotJ.ClientID != client {
			t.Fatalf("join round-trip (%d,%d) -> (%d,%d)", tenant, client, gotJ.TenantID, gotJ.ClientID)
		}
		u := LocalUpdate{ClientID: client, Round: 1, NumSamples: 8, TenantID: tenant, InCohort: true}
		e2 := NewEncoder(nil)
		u.Marshal(e2)
		var gotU LocalUpdate
		if err := gotU.Unmarshal(NewDecoder(e2.Bytes())); err != nil {
			t.Fatalf("update round-trip: %v", err)
		}
		if gotU.TenantID != tenant {
			t.Fatalf("update tenant %d -> %d", tenant, gotU.TenantID)
		}
		if tenant == 0 {
			legacy := Join{ClientID: client, Name: "c"}
			e3 := NewEncoder(nil)
			legacy.Marshal(e3)
			if !bytes.Equal(e.Bytes(), e3.Bytes()) {
				t.Fatal("tenant 0 join does not match the pre-tenancy encoding byte for byte")
			}
		}
	})
}

// FuzzVarintRoundTrip: every uint64 must encode and decode to itself, and
// zigzag must round-trip every int64.
func FuzzVarintRoundTrip(f *testing.F) {
	for _, v := range []uint64{0, 1, 127, 128, 1<<35 - 1, math.MaxUint64} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v uint64) {
		e := NewEncoder(nil)
		e.Uint64(1, v)
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Tag(); err != nil {
			t.Fatalf("tag: %v", err)
		}
		got, err := d.Uint64()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != v {
			t.Fatalf("varint round-trip %d -> %d", v, got)
		}

		s := int64(v)
		e2 := NewEncoder(nil)
		e2.Int64(2, s)
		d2 := NewDecoder(e2.Bytes())
		if _, _, err := d2.Tag(); err != nil {
			t.Fatalf("zigzag tag: %v", err)
		}
		gs, err := d2.Int64()
		if err != nil {
			t.Fatalf("zigzag decode: %v", err)
		}
		if gs != s {
			t.Fatalf("zigzag round-trip %d -> %d", s, gs)
		}
	})
}

// FuzzDoublesRoundTrip: packed doubles built from arbitrary bytes must
// round-trip bit for bit (including NaN payloads and infinities).
func FuzzDoublesRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := make([]float64, len(raw)/8)
		for i := range vals {
			var bits uint64
			for j := 0; j < 8; j++ {
				bits |= uint64(raw[8*i+j]) << (8 * j)
			}
			vals[i] = math.Float64frombits(bits)
		}
		e := NewEncoder(nil)
		e.Doubles(1, vals)
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Tag(); err != nil {
			t.Fatalf("tag: %v", err)
		}
		got, err := d.Doubles()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(vals) {
			t.Fatalf("length %d -> %d", len(vals), len(got))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("value %d: %x -> %x", i, math.Float64bits(vals[i]), math.Float64bits(got[i]))
			}
		}
	})
}

// FuzzTruncatedPrefixes: every strict prefix of a valid message must
// decode to a typed codec error, never a panic and never silent success
// masquerading as the full message.
func FuzzTruncatedPrefixes(f *testing.F) {
	for _, b := range seedMessages() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for cut := 0; cut < len(data); cut++ {
			var u LocalUpdate
			if err := u.Unmarshal(NewDecoder(data[:cut])); err != nil {
				if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadTag) && !errors.Is(err, ErrOverflow) &&
					!isFormatError(err) {
					t.Fatalf("cut %d: unexpected error type %v", cut, err)
				}
			}
		}
	})
}

// isFormatError recognizes the codec's fmt-wrapped errors (e.g. packed
// doubles with a length not divisible by 8).
func isFormatError(err error) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte("wire:"))
}

// TestTruncatedKnownMessagesReturnTypedErrors is the deterministic
// regression companion of the fuzzers: specific adversarial inputs return
// the documented sentinel errors.
func TestTruncatedKnownMessagesReturnTypedErrors(t *testing.T) {
	// A varint that never terminates.
	d := NewDecoder([]byte{0x80, 0x80, 0x80})
	if _, _, err := d.Tag(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("unterminated varint: %v", err)
	}
	// A varint overflowing 64 bits.
	over := bytes.Repeat([]byte{0x80}, 10)
	over = append(over, 0x02)
	d = NewDecoder(over)
	if _, _, err := d.Tag(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("overflowing varint: %v", err)
	}
	// Field number 0 is a malformed tag.
	d = NewDecoder([]byte{0x00})
	if _, _, err := d.Tag(); !errors.Is(err, ErrBadTag) {
		t.Fatalf("zero field tag: %v", err)
	}
	// A length-delimited field promising more bytes than exist.
	e := NewEncoder(nil)
	e.Doubles(4, []float64{1, 2, 3})
	full := e.Bytes()
	var u LocalUpdate
	if err := u.Unmarshal(NewDecoder(full[:len(full)-5])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated doubles: %v", err)
	}
	// Wire type 7 does not exist.
	d = NewDecoder([]byte{0x0f})
	if _, _, err := d.Tag(); !errors.Is(err, ErrBadTag) {
		t.Fatalf("wire type 7: %v", err)
	}
}
