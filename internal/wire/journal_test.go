package wire

import (
	"reflect"
	"strings"
	"testing"
)

// roundTripRecord encodes rec and decodes it into a fresh struct.
func roundTripRecord(t *testing.T, rec *JournalRecord) *JournalRecord {
	t.Helper()
	e := NewEncoder(nil)
	rec.Marshal(e)
	var got JournalRecord
	if err := got.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return &got
}

func TestJournalRecordRoundTrip(t *testing.T) {
	recs := []*JournalRecord{
		{Seq: 1, Op: JournalRoundStart, Round: 1, Version: 0, Cohort: []uint32{0, 1, 2, 3}},
		{Seq: 2, Op: JournalAdmit, Round: 1, ClientID: 3, NumSamples: 128, BaseVersion: 7,
			Primal: []float64{0.25, -3.5, 1e-9}},
		{Seq: 3, Op: JournalLedger, Round: 4, ClientID: 1, LedgerOp: LedgerDepart, Param: 9},
		{Seq: 4, Op: JournalLedger, Round: 4, ClientID: 2, LedgerOp: LedgerReport},
		{Seq: 5, Op: JournalCommit, Round: 4, Version: 4, Weights: []float64{1, 2, 3, 4}},
	}
	for i, rec := range recs {
		got := roundTripRecord(t, rec)
		// Normalize nil-vs-empty slices for the comparison: Reset leaves
		// zero-length slices where the original had nil.
		norm := func(r *JournalRecord) JournalRecord {
			c := *r
			if len(c.Cohort) == 0 {
				c.Cohort = nil
			}
			if len(c.Primal) == 0 {
				c.Primal = nil
			}
			if len(c.Weights) == 0 {
				c.Weights = nil
			}
			return c
		}
		if !reflect.DeepEqual(norm(rec), norm(got)) {
			t.Fatalf("record %d round-trip mismatch:\n  sent %+v\n  got  %+v", i, rec, got)
		}
	}
}

func TestJournalRecordRejectsBadOps(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(2, 9) // op out of range
	var rec JournalRecord
	if err := rec.Unmarshal(NewDecoder(e.Bytes())); err == nil || !strings.Contains(err.Error(), "op") {
		t.Fatalf("op 9 accepted: %v", err)
	}
	e.Reset()
	e.Uint64(2, uint64(JournalLedger))
	e.Uint64(11, 9) // ledger op out of range
	if err := rec.Unmarshal(NewDecoder(e.Bytes())); err == nil || !strings.Contains(err.Error(), "ledger") {
		t.Fatalf("ledger op 9 accepted: %v", err)
	}
	// A record with no op at all is also rejected: replay cannot dispatch it.
	if err := rec.Unmarshal(NewDecoder(nil)); err == nil {
		t.Fatal("empty record accepted")
	}
}

func TestJournalRecordResetDropsStaleFields(t *testing.T) {
	// A reused struct must not leak a previous record's vectors into a
	// record that omits them (the same staleness contract as LocalUpdate).
	full := &JournalRecord{Seq: 1, Op: JournalCommit, Round: 1, Version: 1, Weights: []float64{9, 9, 9}}
	e := NewEncoder(nil)
	full.Marshal(e)
	var rec JournalRecord
	if err := rec.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	slim := &JournalRecord{Seq: 2, Op: JournalLedger, Round: 2, ClientID: 1, LedgerOp: LedgerReport}
	slim.Marshal(e)
	if err := rec.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(rec.Weights) != 0 {
		t.Fatalf("stale weights survived reuse: %v", rec.Weights)
	}
}

func TestJournalCheckpointRoundTrip(t *testing.T) {
	cp := &JournalCheckpoint{
		Seq: 42, NextRound: 7, Version: 6,
		Weights:       []float64{0.5, -0.5, 3.25},
		DepartedUntil: []uint32{0, ^uint32(0), 0},
		BenchedUntil:  []uint32{0, 0, 9},
		Strikes:       []uint32{0, 0, 2},
		AwaitRejoin:   []uint32{0, 0, 0},
		Rejoined:      3, TimedOut: 5, Inflight: 2,
	}
	e := NewEncoder(nil)
	cp.Marshal(e)
	var got JournalCheckpoint
	if err := got.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*cp, got) {
		t.Fatalf("checkpoint round-trip mismatch:\n  sent %+v\n  got  %+v", cp, got)
	}
}

func TestJournalCheckpointRejectsDisagreeingRosters(t *testing.T) {
	cp := &JournalCheckpoint{
		Seq: 1, NextRound: 2, Weights: []float64{1},
		DepartedUntil: []uint32{0, 0},
		BenchedUntil:  []uint32{0},
		Strikes:       []uint32{0, 0},
		AwaitRejoin:   []uint32{0, 0},
	}
	e := NewEncoder(nil)
	cp.Marshal(e)
	var got JournalCheckpoint
	if err := got.Unmarshal(NewDecoder(e.Bytes())); err == nil {
		t.Fatal("checkpoint with mismatched membership arrays accepted")
	}
}
