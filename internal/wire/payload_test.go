package wire

import (
	"errors"
	"math"
	"testing"
)

// roundTripPayload marshals p as a nested message and decodes it back.
func roundTripPayload(t *testing.T, p *Payload) *Payload {
	t.Helper()
	e := NewEncoder(nil)
	p.Marshal(e)
	var got Payload
	if err := got.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatalf("payload round trip: %v", err)
	}
	return &got
}

func TestPayloadDenseRoundTrip(t *testing.T) {
	p := &Payload{Enc: EncDense, Dim: 3, Dense: []float64{1.5, -2.5, math.Pi}}
	got := roundTripPayload(t, p)
	if got.Enc != EncDense || got.Dim != 3 {
		t.Fatalf("decoded header %v/%d", got.Enc, got.Dim)
	}
	for i := range p.Dense {
		if math.Float64bits(got.Dense[i]) != math.Float64bits(p.Dense[i]) {
			t.Fatalf("value %d changed", i)
		}
	}
}

func TestPayloadSparseRoundTrip(t *testing.T) {
	p := &Payload{Enc: EncSparse, Dim: 10, Indices: []uint32{0, 4, 9}, Values: []float64{-1, 2, 3.5}}
	got := roundTripPayload(t, p)
	if got.Enc != EncSparse || got.Dim != 10 || len(got.Indices) != 3 {
		t.Fatalf("decoded sparse header wrong: %+v", got)
	}
	dense, err := got.Densify(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 0, 0, 0, 2, 0, 0, 0, 0, 3.5}
	for i := range want {
		if dense[i] != want[i] {
			t.Fatalf("densify[%d] = %v, want %v", i, dense[i], want[i])
		}
	}
}

func TestPayloadQuantRoundTrip(t *testing.T) {
	p := &Payload{Enc: EncQuant, Dim: 4, Scale: 0.5, Offset: -1, Bits: 8, Codes: []byte{0, 1, 2, 255}}
	got := roundTripPayload(t, p)
	dense, err := got.Densify(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -0.5, 0, -1 + 0.5*255}
	for i := range want {
		if dense[i] != want[i] {
			t.Fatalf("dequant[%d] = %v, want %v", i, dense[i], want[i])
		}
	}
}

func TestPayloadFloat16RoundTrip(t *testing.T) {
	vals := []float64{0, 1, -0.5, 2048}
	codes := make([]byte, 2*len(vals))
	for i, v := range vals {
		h := Float16FromFloat64(v)
		codes[2*i] = byte(h)
		codes[2*i+1] = byte(h >> 8)
	}
	p := &Payload{Enc: EncFloat16, Dim: uint32(len(vals)), Codes: codes}
	got := roundTripPayload(t, p)
	dense, err := got.Densify(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dense[i] != vals[i] {
			t.Fatalf("f16[%d] = %v, want %v", i, dense[i], vals[i])
		}
	}
}

func TestPayloadValidationRejectsMalformed(t *testing.T) {
	bad := []*Payload{
		{Enc: Encoding(9), Dim: 1},                                                 // unknown encoding
		{Enc: EncDense, Dim: 3, Dense: []float64{1}},                               // length mismatch
		{Enc: EncSparse, Dim: 4, Indices: []uint32{1}, Values: []float64{1, 2}},    // parallel arrays differ
		{Enc: EncSparse, Dim: 4, Indices: []uint32{5}, Values: []float64{1}},       // index out of range
		{Enc: EncSparse, Dim: 4, Indices: []uint32{2, 1}, Values: []float64{1, 2}}, // out of order
		{Enc: EncSparse, Dim: 4, Indices: []uint32{1, 1}, Values: []float64{1, 2}}, // duplicate index
		{Enc: EncSparse, Dim: 1, Indices: []uint32{0, 0}, Values: []float64{1, 2}}, // more entries than dim
		{Enc: EncQuant, Dim: 2, Bits: 0, Codes: []byte{1, 2}},                      // bits out of range
		{Enc: EncQuant, Dim: 2, Bits: 17, Codes: []byte{1, 2, 3, 4}},               // bits out of range
		{Enc: EncQuant, Dim: 2, Bits: 8, Codes: []byte{1}},                         // short codes
		{Enc: EncQuant, Dim: 2, Bits: 8, Scale: math.NaN(), Codes: []byte{1, 2}},   // NaN scale
		{Enc: EncQuant, Dim: 2, Bits: 8, Offset: math.Inf(1), Codes: []byte{1, 2}}, // Inf offset
		{Enc: EncQuant, Dim: 2, Bits: 8, Scale: -1, Codes: []byte{1, 2}},           // negative scale
		{Enc: EncFloat16, Dim: 2, Codes: []byte{1, 2, 3}},                          // short codes
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("case %d: want ErrBadPayload, got %v", i, err)
		}
		if _, err := p.Densify(nil); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("case %d: Densify must reject invalid payloads, got %v", i, err)
		}
	}
}

func TestLocalUpdateWithPayloadRoundTrip(t *testing.T) {
	m := &LocalUpdate{
		ClientID: 3, Round: 7, NumSamples: 64,
		Epsilon: 0.5, ComputeSec: 0.25, BaseVersion: 2, InCohort: true,
		PrimalP: &Payload{Enc: EncSparse, Dim: 6, Indices: []uint32{1, 3}, Values: []float64{-2, 4}},
	}
	e := NewEncoder(nil)
	m.Marshal(e)
	var got LocalUpdate
	if err := got.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.PrimalP == nil || got.PrimalP.Enc != EncSparse || got.PrimalP.Dim != 6 {
		t.Fatalf("payload lost in transit: %+v", got.PrimalP)
	}
	if len(got.Primal) != 0 {
		t.Fatal("compressed update must not also carry a dense primal")
	}
	dense, err := got.PrimalP.Densify(nil)
	if err != nil {
		t.Fatal(err)
	}
	if dense[1] != -2 || dense[3] != 4 || dense[0] != 0 {
		t.Fatalf("densified primal wrong: %v", dense)
	}
}

func TestGlobalModelWithPayloadRoundTrip(t *testing.T) {
	vals := []float64{1, -1, 0.25}
	codes := make([]byte, 2*len(vals))
	for i, v := range vals {
		h := Float16FromFloat64(v)
		codes[2*i] = byte(h)
		codes[2*i+1] = byte(h >> 8)
	}
	m := &GlobalModel{
		Round: 2, Version: 5, CohortSize: 3,
		WeightsP: &Payload{Enc: EncFloat16, Dim: 3, Codes: codes},
	}
	e := NewEncoder(nil)
	m.Marshal(e)
	var got GlobalModel
	if err := got.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.WeightsP == nil {
		t.Fatal("weights payload lost")
	}
	if len(got.Weights) != 0 {
		t.Fatal("compressed model must not also carry dense weights")
	}
	dense, err := got.WeightsP.Densify(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dense[i] != vals[i] {
			t.Fatalf("weights[%d] = %v, want %v", i, dense[i], vals[i])
		}
	}
}

func TestCompressedUpdateIsSmallerOnTheWire(t *testing.T) {
	dim := 10000
	dense := make([]float64, dim)
	for i := range dense {
		dense[i] = float64(i) * 0.001
	}
	full := &LocalUpdate{ClientID: 1, Round: 1, NumSamples: 10, Primal: dense}
	e := NewEncoder(nil)
	full.Marshal(e)
	denseBytes := e.Len()

	k := dim / 10
	idx := make([]uint32, k)
	vals := make([]float64, k)
	for i := 0; i < k; i++ {
		idx[i] = uint32(i * 10)
		vals[i] = dense[i*10]
	}
	sparse := &LocalUpdate{ClientID: 1, Round: 1, NumSamples: 10,
		PrimalP: &Payload{Enc: EncSparse, Dim: uint32(dim), Indices: idx, Values: vals}}
	e2 := NewEncoder(nil)
	sparse.Marshal(e2)
	if ratio := float64(denseBytes) / float64(e2.Len()); ratio < 4 {
		t.Fatalf("top-10%% sparse update only %.2fx smaller than dense (dense %dB, sparse %dB)", ratio, denseBytes, e2.Len())
	}
}
