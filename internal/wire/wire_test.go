package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, math.MaxUint64}
	for _, v := range values {
		e := NewEncoder(nil)
		e.Uint64(1, v)
		d := NewDecoder(e.Bytes())
		f, w, err := d.Tag()
		if err != nil || f != 1 || w != typeVarint {
			t.Fatalf("tag decode failed: %v %d %d", err, f, w)
		}
		got, err := d.Uint64()
		if err != nil || got != v {
			t.Fatalf("varint %d round-tripped to %d (%v)", v, got, err)
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	values := []int64{0, -1, 1, -64, 63, math.MinInt64, math.MaxInt64}
	for _, v := range values {
		e := NewEncoder(nil)
		e.Int64(2, v)
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Tag(); err != nil {
			t.Fatal(err)
		}
		got, err := d.Int64()
		if err != nil || got != v {
			t.Fatalf("int64 %d round-tripped to %d (%v)", v, got, err)
		}
	}
}

func TestZigzagSmallMagnitudeIsSmall(t *testing.T) {
	// Zigzag exists so small negative numbers stay short.
	e := NewEncoder(nil)
	e.Int64(1, -1)
	if e.Len() != 2 { // 1 tag byte + 1 payload byte
		t.Fatalf("zigzag(-1) used %d bytes, want 2", e.Len())
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	values := []float64{0, -0.0, 1.5, math.Pi, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	for _, v := range values {
		e := NewEncoder(nil)
		e.Float64(3, v)
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Tag(); err != nil {
			t.Fatal(err)
		}
		got, err := d.Float64()
		if err != nil || got != v {
			t.Fatalf("float %v round-tripped to %v (%v)", v, got, err)
		}
	}
}

func TestFloat64NaNRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.Float64(1, math.NaN())
	d := NewDecoder(e.Bytes())
	if _, _, err := d.Tag(); err != nil {
		t.Fatal(err)
	}
	got, err := d.Float64()
	if err != nil || !math.IsNaN(got) {
		t.Fatalf("NaN did not round-trip: %v %v", got, err)
	}
}

func TestStringAndBytesRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.String(1, "héllo wørld")
	e.BytesField(2, []byte{0, 1, 2, 255})
	d := NewDecoder(e.Bytes())
	if _, _, err := d.Tag(); err != nil {
		t.Fatal(err)
	}
	s, err := d.String()
	if err != nil || s != "héllo wørld" {
		t.Fatalf("string round trip: %q %v", s, err)
	}
	if _, _, err := d.Tag(); err != nil {
		t.Fatal(err)
	}
	b, err := d.BytesField()
	if err != nil || len(b) != 4 || b[3] != 255 {
		t.Fatalf("bytes round trip: %v %v", b, err)
	}
}

func TestDoublesRoundTripQuick(t *testing.T) {
	f := func(v []float64) bool {
		e := NewEncoder(nil)
		e.Doubles(1, v)
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Tag(); err != nil {
			return false
		}
		got, err := d.Doubles()
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			// Compare bit patterns so NaN round-trips count as equal.
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedInputErrors(t *testing.T) {
	e := NewEncoder(nil)
	e.Doubles(1, []float64{1, 2, 3})
	full := e.Bytes()
	for cut := 1; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_, _, err := d.Tag()
		if err != nil {
			continue // tag itself truncated: acceptable error
		}
		if _, err := d.Doubles(); err == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(full))
		}
	}
}

func TestVarintOverflowDetected(t *testing.T) {
	// 11 bytes of continuation = overflow.
	buf := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	d := NewDecoder(buf)
	if _, err := d.Uint64(); err == nil {
		t.Fatal("varint overflow not detected")
	}
}

func TestBadTagDetected(t *testing.T) {
	// Field number 0 is invalid.
	d := NewDecoder([]byte{0x00})
	if _, _, err := d.Tag(); err == nil {
		t.Fatal("zero field tag accepted")
	}
	// Wire type 7 is invalid.
	d = NewDecoder([]byte{0x0f})
	if _, _, err := d.Tag(); err == nil {
		t.Fatal("wire type 7 accepted")
	}
}

func TestSkipUnknownFields(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(9, 42)           // unknown varint
	e.Float64(10, 3.5)        // unknown fixed64
	e.String(11, "ignore me") // unknown bytes
	e.Uint64(1, 7)            // known field
	var m Join
	// Join only knows fields 1 and 2; the rest must be skipped silently.
	if err := m.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatalf("unknown field skipping failed: %v", err)
	}
	if m.ClientID != 7 {
		t.Fatalf("ClientID = %d, want 7", m.ClientID)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	in := Join{ClientID: 12, Name: "hospital-a"}
	e := NewEncoder(nil)
	in.Marshal(e)
	var out Join
	if err := out.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}

func TestJoinAckRoundTrip(t *testing.T) {
	in := JoinAck{NumClients: 203, Rounds: 50, ModelSize: 123456}
	e := NewEncoder(nil)
	in.Marshal(e)
	var out JoinAck
	if err := out.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}

func TestGlobalModelRoundTrip(t *testing.T) {
	in := GlobalModel{Round: 3, Weights: []float64{1, -2, math.Pi}, Final: true}
	e := NewEncoder(nil)
	in.Marshal(e)
	var out GlobalModel
	if err := out.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out.Round != 3 || !out.Final || len(out.Weights) != 3 || out.Weights[2] != math.Pi {
		t.Fatalf("round trip %+v", out)
	}
}

func TestLocalUpdateRoundTrip(t *testing.T) {
	in := LocalUpdate{
		ClientID:   5,
		Round:      17,
		NumSamples: 9000,
		Primal:     []float64{0.5, -0.25},
		Dual:       []float64{1, 2},
		Epsilon:    10,
		ComputeSec: 4.24,
	}
	e := NewEncoder(nil)
	in.Marshal(e)
	var out LocalUpdate
	if err := out.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out.ClientID != 5 || out.Round != 17 || out.NumSamples != 9000 ||
		len(out.Primal) != 2 || len(out.Dual) != 2 || out.Epsilon != 10 || out.ComputeSec != 4.24 {
		t.Fatalf("round trip %+v", out)
	}
}

// TestLocalUpdateDualOmissionHalvesPayload verifies the paper's central
// communication claim at the wire level: a LocalUpdate without dual
// information (IIADMM, FedAvg) is about half the size of one with it
// (ICEADMM), for large models.
func TestLocalUpdateDualOmissionHalvesPayload(t *testing.T) {
	m := 10000
	primal := make([]float64, m)
	dual := make([]float64, m)
	withDual := LocalUpdate{Primal: primal, Dual: dual}
	withoutDual := LocalUpdate{Primal: primal}
	e1 := NewEncoder(nil)
	withDual.Marshal(e1)
	e2 := NewEncoder(nil)
	withoutDual.Marshal(e2)
	ratio := float64(e1.Len()) / float64(e2.Len())
	if ratio < 1.95 || ratio > 2.05 {
		t.Fatalf("dual/no-dual size ratio = %v, want ~2", ratio)
	}
}

func TestLocalUpdateEmptyDualStaysEmpty(t *testing.T) {
	in := LocalUpdate{Primal: []float64{1}, Epsilon: math.Inf(1)}
	e := NewEncoder(nil)
	in.Marshal(e)
	var out LocalUpdate
	if err := out.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(out.Dual) != 0 {
		t.Fatalf("empty dual decoded as %v", out.Dual)
	}
	if !math.IsInf(out.Epsilon, 1) {
		t.Fatalf("epsilon inf lost: %v", out.Epsilon)
	}
}

func TestKindString(t *testing.T) {
	if KindJoin.String() != "Join" || KindShutdown.String() != "Shutdown" {
		t.Fatal("kind names")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind name")
	}
}

func TestEncoderReuse(t *testing.T) {
	e := NewEncoder(make([]byte, 0, 64))
	e.Uint64(1, 5)
	first := len(e.Bytes())
	e2 := NewEncoder(e.Bytes())
	e2.Uint64(1, 5)
	if len(e2.Bytes()) != first {
		t.Fatal("encoder reuse did not reset buffer")
	}
}

func BenchmarkMarshalLocalUpdate(b *testing.B) {
	// Model of ~100k parameters, the regime of the paper's CNN.
	m := LocalUpdate{Primal: make([]float64, 100000)}
	e := NewEncoder(make([]byte, 0, 900000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e = NewEncoder(e.Bytes())
		m.Marshal(e)
	}
	b.SetBytes(int64(e.Len()))
}

func BenchmarkUnmarshalLocalUpdate(b *testing.B) {
	m := LocalUpdate{Primal: make([]float64, 100000)}
	e := NewEncoder(nil)
	m.Marshal(e)
	buf := e.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out LocalUpdate
		if err := out.Unmarshal(NewDecoder(buf)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}
