package wire

import (
	"testing"
)

// Steady-state allocation regression tests: once encoder, decoder, and
// destination structs exist, repeated encode/decode round-trips of the
// hot-path messages must not allocate at all. These pin the buffer-reuse
// contract of Encoder.Reset, Decoder.Reset, DoublesInto/Uint32sInto,
// Payload.EncodeInto, and the capacity-reusing Unmarshal paths.

// roundTripAllocs measures allocations of one encode+decode cycle with
// fully reused state.
func roundTripAllocs(t *testing.T, marshal func(*Encoder), unmarshal func(*Decoder) error) float64 {
	t.Helper()
	e := NewEncoder(nil)
	var d Decoder
	cycle := func() {
		e.Reset()
		marshal(e)
		d.Reset(e.Bytes())
		if err := unmarshal(&d); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm-up sizes every reused buffer
	return testing.AllocsPerRun(50, cycle)
}

// TestLocalUpdateRoundTripZeroAlloc: the dense model-upload message — the
// dominant payload of every round — encodes and decodes without garbage.
func TestLocalUpdateRoundTripZeroAlloc(t *testing.T) {
	in := &LocalUpdate{ClientID: 3, Round: 7, NumSamples: 64, Primal: make([]float64, 4096), Epsilon: 1}
	for i := range in.Primal {
		in.Primal[i] = float64(i) * 0.25
	}
	var out LocalUpdate
	if avg := roundTripAllocs(t,
		func(e *Encoder) { in.Marshal(e) },
		func(d *Decoder) error { return out.Unmarshal(d) },
	); avg != 0 {
		t.Fatalf("dense LocalUpdate round-trip allocates %.1f objects/op, want 0", avg)
	}
	if len(out.Primal) != len(in.Primal) || out.Primal[17] != in.Primal[17] {
		t.Fatal("round-trip corrupted the primal")
	}
}

// TestPayloadRoundTripZeroAlloc sweeps every payload encoding through a
// reused Payload: EncodeInto writes the nested frame without a scratch
// encoder and Unmarshal reuses the destination buffers.
func TestPayloadRoundTripZeroAlloc(t *testing.T) {
	const dim = 2048
	dense := make([]float64, dim)
	for i := range dense {
		dense[i] = float64(i%97) / 97
	}
	sparseIdx := make([]uint32, dim/10)
	sparseVal := make([]float64, dim/10)
	for i := range sparseIdx {
		sparseIdx[i] = uint32(i * 10)
		sparseVal[i] = float64(i)
	}
	payloads := map[string]*Payload{
		"dense":   {Enc: EncDense, Dim: dim, Dense: dense},
		"sparse":  {Enc: EncSparse, Dim: dim, Indices: sparseIdx, Values: sparseVal},
		"quant":   {Enc: EncQuant, Dim: dim, Bits: 8, Scale: 0.5, Codes: make([]byte, dim)},
		"float16": {Enc: EncFloat16, Dim: dim, Codes: make([]byte, 2*dim)},
	}
	for name, in := range payloads {
		t.Run(name, func(t *testing.T) {
			if err := in.Validate(); err != nil {
				t.Fatal(err)
			}
			var out Payload
			avg := roundTripAllocs(t,
				func(e *Encoder) { in.EncodeInto(e, 10) },
				func(d *Decoder) error {
					f, _, err := d.Tag()
					if err != nil || f != 10 {
						t.Fatalf("tag %d err %v", f, err)
					}
					b, err := d.BytesField()
					if err != nil {
						return err
					}
					out.Reset()
					sub := NewDecoder(b)
					return out.Unmarshal(sub)
				},
			)
			// The nested sub-decoder is the single tolerated allocation.
			if avg > 1 {
				t.Fatalf("%s payload round-trip allocates %.1f objects/op, want <= 1", name, avg)
			}
			if out.Enc != in.Enc || out.Dim != in.Dim {
				t.Fatalf("round-trip changed header: %v/%d vs %v/%d", out.Enc, out.Dim, in.Enc, in.Dim)
			}
		})
	}
}

// TestEncodeIntoMatchesMessage: the direct length-prefixed encode must be
// byte-identical to the generic scratch-encoder path, for every encoding.
func TestEncodeIntoMatchesMessage(t *testing.T) {
	payloads := []*Payload{
		{Enc: EncDense, Dim: 3, Dense: []float64{1, -2, 3.5}},
		{Enc: EncSparse, Dim: 10, Indices: []uint32{1, 5, 9}, Values: []float64{0.1, -0.5, 4}},
		{Enc: EncQuant, Dim: 4, Bits: 12, Scale: 0.25, Offset: -1, Codes: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Enc: EncFloat16, Dim: 2, Codes: []byte{0, 60, 0, 188}},
	}
	for _, p := range payloads {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		viaMessage := NewEncoder(nil)
		viaMessage.Message(9, p)
		direct := NewEncoder(nil)
		p.EncodeInto(direct, 9)
		if string(viaMessage.Bytes()) != string(direct.Bytes()) {
			t.Fatalf("%s: EncodeInto differs from Message:\n  %x\n  %x", p.Enc, direct.Bytes(), viaMessage.Bytes())
		}
		if want := p.EncodedLen(); want != p.WireBytes() {
			t.Fatalf("%s: EncodedLen %d != WireBytes %d", p.Enc, want, p.WireBytes())
		}
	}
}

// TestReusedMessageDropsAbsentFields: decoding into a reused struct must
// not leak fields the new message omits — an ADMM update's dual must not
// survive into a FedAvg update, and a float16 broadcast's payload must
// not survive into the next dense broadcast (where a stale WeightsP
// would densify last round's weights over the fresh ones).
func TestReusedMessageDropsAbsentFields(t *testing.T) {
	e := NewEncoder(nil)

	var u LocalUpdate
	admm := &LocalUpdate{ClientID: 1, NumSamples: 8, Primal: []float64{1, 2}, Dual: []float64{3, 4}, Control: ControlGoodbye, RejoinRound: 9}
	admm.Marshal(e)
	if err := u.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	fedavg := &LocalUpdate{ClientID: 2, NumSamples: 8, Primal: []float64{5, 6}}
	fedavg.Marshal(e)
	if err := u.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(u.Dual) != 0 || u.Control != ControlNone || u.RejoinRound != 0 {
		t.Fatalf("reused LocalUpdate kept absent fields: dual=%v control=%d rejoin=%d", u.Dual, u.Control, u.RejoinRound)
	}
	if u.Primal[0] != 5 || u.ClientID != 2 {
		t.Fatalf("reused LocalUpdate decoded wrong: %+v", u)
	}

	var gm GlobalModel
	e.Reset()
	f16 := &GlobalModel{Round: 1, Rho: 2, WeightsP: &Payload{Enc: EncFloat16, Dim: 1, Codes: []byte{0, 60}}}
	f16.Marshal(e)
	if err := gm.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	dense := &GlobalModel{Round: 2, Weights: []float64{7, 8}}
	dense.Marshal(e)
	if err := gm.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if gm.WeightsP != nil || gm.Rho != 0 {
		t.Fatalf("reused GlobalModel kept absent fields: weightsP=%v rho=%v", gm.WeightsP, gm.Rho)
	}
	if len(gm.Weights) != 2 || gm.Weights[0] != 7 {
		t.Fatalf("reused GlobalModel decoded wrong weights: %v", gm.Weights)
	}
}

// TestDoublesIntoReusesCapacity: a destination whose length differs but
// whose capacity suffices must be reused, not reallocated.
func TestDoublesIntoReusesCapacity(t *testing.T) {
	e := NewEncoder(nil)
	vals := []float64{1, 2, 3, 4, 5}
	e.Doubles(1, vals)
	d := NewDecoder(e.Bytes())
	if _, _, err := d.Tag(); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 2, 16)
	got, err := d.DoublesInto(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) || got[4] != 5 {
		t.Fatalf("decoded %v", got)
	}
	if &got[0] != &dst[:1][0] {
		t.Fatal("DoublesInto reallocated despite sufficient capacity")
	}
}
