package wire

import "fmt"

// PartialAggregate carries one aggregation shard's contribution to a
// round: the folded accumulator values over the contiguous index range
// [Lo, Hi) of the model, plus the effective weight mass and update count
// that produced them. Shards own disjoint adjacent ranges of the index
// space, so reducing partials is pure concatenation — an associative,
// arithmetic-free merge that cannot perturb a single bit regardless of
// tree shape. That is what lets a sharded tier reproduce the
// single-aggregator trajectory exactly (the non-negotiable invariant the
// core tests pin); a client-partitioned design with summed partials could
// not, because floating-point addition does not associate.
type PartialAggregate struct {
	Round   uint32
	Version uint64 // model version the partial advances to
	ShardID uint32 // producing shard, in [0, Shards)
	Shards  uint32 // tier width, for cross-checking a gather
	Lo, Hi  uint32 // owned index range [Lo, Hi) of the model
	// Weight is the effective fold mass: the sum of the fold coefficients
	// applied to the updates this partial folded. Every shard of a round
	// folds the same updates with the same coefficients, so merging
	// requires bit-equal weights.
	Weight float64
	// Count is the number of updates folded. Merged ranges cover the same
	// updates, so a merge keeps the count rather than summing it.
	Count uint32
	// Sum holds the folded accumulator values for [Lo, Hi): Hi-Lo doubles.
	Sum []float64
}

// Validate checks internal consistency.
func (p *PartialAggregate) Validate() error {
	if p.Shards == 0 {
		return fmt.Errorf("wire: partial with zero tier width")
	}
	if p.ShardID >= p.Shards {
		return fmt.Errorf("wire: shard %d out of tier width %d", p.ShardID, p.Shards)
	}
	if p.Hi < p.Lo {
		return fmt.Errorf("wire: partial range [%d,%d) is inverted", p.Lo, p.Hi)
	}
	if uint32(len(p.Sum)) != p.Hi-p.Lo {
		return fmt.Errorf("wire: partial carries %d values for range [%d,%d)", len(p.Sum), p.Lo, p.Hi)
	}
	return nil
}

// CanMerge reports whether b is the adjacent right-hand continuation of p
// from the same round: ranges must abut (p.Hi == b.Lo) and the round,
// version, tier width, weight, and count must agree exactly. Weight
// equality is bitwise — both shards folded the same updates with the same
// scalar arithmetic, so any difference means the partials belong to
// different folds.
func (p *PartialAggregate) CanMerge(b *PartialAggregate) error {
	if p.Round != b.Round || p.Version != b.Version {
		return fmt.Errorf("wire: merging partials from different folds (round %d/%d, version %d/%d)",
			p.Round, b.Round, p.Version, b.Version)
	}
	if p.Shards != b.Shards {
		return fmt.Errorf("wire: merging partials from different tier widths (%d vs %d)", p.Shards, b.Shards)
	}
	if p.Hi != b.Lo {
		return fmt.Errorf("wire: merging non-adjacent ranges [%d,%d) and [%d,%d)", p.Lo, p.Hi, b.Lo, b.Hi)
	}
	if p.Weight != b.Weight {
		return fmt.Errorf("wire: merging partials with different fold weights (%v vs %v)", p.Weight, b.Weight)
	}
	if p.Count != b.Count {
		return fmt.Errorf("wire: merging partials with different update counts (%d vs %d)", p.Count, b.Count)
	}
	return nil
}

// Merge folds b into p, extending p's range to [p.Lo, b.Hi). The merge is
// concatenation of disjoint adjacent value ranges — no arithmetic — so it
// is associative and exact. When b.Sum is the in-memory continuation of
// p.Sum within one backing array (the in-process tier's gather layout),
// the concat is a pure reslice; otherwise the values are appended, which
// is allocation-free once p.Sum's capacity covers the merged range.
func (p *PartialAggregate) Merge(b *PartialAggregate) error {
	if err := p.CanMerge(b); err != nil {
		return err
	}
	n := len(p.Sum)
	if len(b.Sum) > 0 && cap(p.Sum) > n && &p.Sum[:n+1][n] == &b.Sum[0] {
		p.Sum = p.Sum[: n+len(b.Sum) : cap(p.Sum)]
	} else {
		p.Sum = append(p.Sum, b.Sum...)
	}
	p.Hi = b.Hi
	return nil
}

// Reset clears p for reuse, keeping the Sum buffer's capacity.
func (p *PartialAggregate) Reset() {
	*p = PartialAggregate{Sum: p.Sum[:0]}
}

// Marshal encodes p.
func (p *PartialAggregate) Marshal(e *Encoder) {
	e.Uint64(1, uint64(p.Round))
	if p.Version > 0 {
		e.Uint64(2, p.Version)
	}
	e.Uint64(3, uint64(p.ShardID))
	e.Uint64(4, uint64(p.Shards))
	e.Uint64(5, uint64(p.Lo))
	e.Uint64(6, uint64(p.Hi))
	e.Float64(7, p.Weight)
	if p.Count > 0 {
		e.Uint64(8, uint64(p.Count))
	}
	e.Doubles(9, p.Sum)
}

// Unmarshal decodes p, ignoring unknown fields. p is Reset first, so a
// struct reused across messages reuses the Sum capacity without leaking a
// previous message's fields. The decoded message is validated before
// returning, so a malformed partial cannot enter a reduce.
func (p *PartialAggregate) Unmarshal(d *Decoder) error {
	p.Reset()
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			p.Round = uint32(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			p.Version = v
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			p.ShardID = uint32(v)
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			p.Shards = uint32(v)
		case 5:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			p.Lo = uint32(v)
		case 6:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			p.Hi = uint32(v)
		case 7:
			v, err := d.Float64()
			if err != nil {
				return err
			}
			p.Weight = v
		case 8:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			p.Count = uint32(v)
		case 9:
			v, err := d.DoublesInto(p.Sum)
			if err != nil {
				return err
			}
			p.Sum = v
		default:
			if err := d.Skip(w); err != nil {
				return err
			}
		}
	}
	return p.Validate()
}
