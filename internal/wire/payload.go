package wire

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Encoding discriminates the vector representations a Payload can carry.
// Dense is the legacy packed-float64 form; the others are the compressed
// forms produced by the update pipeline's compression stages.
type Encoding uint8

// Payload encodings.
const (
	EncDense   Encoding = 0 // packed float64, one per coordinate
	EncSparse  Encoding = 1 // index+value pairs (top-k sparsification)
	EncQuant   Encoding = 2 // affine-quantized integer codes
	EncFloat16 Encoding = 3 // IEEE-754 half-precision floats
	// EncSubset is the LoRA-style partial-parameter encoding: index+value
	// pairs naming a small trainable slice of the model. It shares the
	// sparse wire layout but not its semantics — unlisted coordinates KEEP
	// their current global value instead of decoding to zero, so a subset
	// payload cannot Densify on its own (it needs a base vector; the server
	// scatter-folds it into the accumulator instead).
	EncSubset Encoding = 4
)

// String names the encoding for logs and errors.
func (e Encoding) String() string {
	switch e {
	case EncDense:
		return "dense"
	case EncSparse:
		return "sparse"
	case EncQuant:
		return "quant"
	case EncFloat16:
		return "float16"
	case EncSubset:
		return "subset"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

// ErrBadPayload is the sentinel wrapped by every structural payload
// validation failure: unknown encoding, mismatched lengths, indices out of
// range or out of order, invalid quantization width. Adversarial or
// truncated payloads decode to an error wrapping it — never a panic.
var ErrBadPayload = errors.New("wire: malformed payload")

// Payload is a model vector in one of several wire encodings. It is the
// value the update pipeline's compression stages produce on the client and
// the server inverts back to a dense vector before aggregation.
//
// Exactly the fields of the active Enc are meaningful:
//
//	EncDense:   Dense (len == Dim)
//	EncSparse:  Indices, Values (parallel, Indices strictly increasing < Dim)
//	EncQuant:   Scale, Offset, Bits in [1,16], Codes (ceil(Bits/8) bytes/coord)
//	EncFloat16: Codes (2 bytes/coord, little-endian half floats)
type Payload struct {
	Enc     Encoding
	Dim     uint32
	Dense   []float64
	Indices []uint32
	Values  []float64
	Scale   float64
	Offset  float64
	Bits    uint8
	Codes   []byte
}

// Reset clears p for reuse, keeping every allocated buffer's capacity.
// Callers decoding into a recycled Payload should Reset it first so
// fields of a previous encoding cannot leak into the new one.
func (p *Payload) Reset() {
	p.Enc, p.Dim, p.Scale, p.Offset, p.Bits = EncDense, 0, 0, 0, 0
	p.Dense = p.Dense[:0]
	p.Indices = p.Indices[:0]
	p.Values = p.Values[:0]
	p.Codes = p.Codes[:0]
}

// EncodedLen returns the exact size of the body Marshal produces, so a
// container can write the length prefix first and encode in place.
func (p *Payload) EncodedLen() int {
	// Field tags here are all < 16, hence one byte each.
	n := 1 + varintLen(uint64(p.Enc))
	n += 1 + varintLen(uint64(p.Dim))
	switch p.Enc {
	case EncDense:
		n += 1 + varintLen(uint64(8*len(p.Dense))) + 8*len(p.Dense)
	case EncSparse, EncSubset:
		n += 1 + varintLen(uint64(4*len(p.Indices))) + 4*len(p.Indices)
		n += 1 + varintLen(uint64(8*len(p.Values))) + 8*len(p.Values)
	case EncQuant:
		n += 2 * (1 + 8) // scale, offset: fixed64
		n += 1 + varintLen(uint64(p.Bits))
		n += 1 + varintLen(uint64(len(p.Codes))) + len(p.Codes)
	case EncFloat16:
		n += 1 + varintLen(uint64(len(p.Codes))) + len(p.Codes)
	}
	return n
}

// EncodeInto appends p to e as the length-delimited nested message of
// field, without the scratch encoder (and its O(size) copy + allocation)
// Encoder.Message needs: the body size is computed up front by EncodedLen
// and the length prefix written directly.
func (p *Payload) EncodeInto(e *Encoder, field int) {
	size := p.EncodedLen()
	e.tag(field, typeBytes)
	e.varint(uint64(size))
	start := e.Len()
	p.Marshal(e)
	if e.Len()-start != size {
		// A mismatch would corrupt every following field of the stream;
		// fail loudly rather than emit an undecodable message.
		panic(fmt.Sprintf("wire: payload encoded %d bytes, EncodedLen said %d", e.Len()-start, size))
	}
}

// Marshal encodes p as a nested message body.
func (p *Payload) Marshal(e *Encoder) {
	e.Uint64(1, uint64(p.Enc))
	e.Uint64(2, uint64(p.Dim))
	switch p.Enc {
	case EncDense:
		e.Doubles(3, p.Dense)
	case EncSparse, EncSubset:
		e.Uint32s(4, p.Indices)
		e.Doubles(5, p.Values)
	case EncQuant:
		e.Float64(6, p.Scale)
		e.Float64(7, p.Offset)
		e.Uint64(8, uint64(p.Bits))
		e.BytesField(9, p.Codes)
	case EncFloat16:
		e.BytesField(9, p.Codes)
	}
}

// Unmarshal decodes and structurally validates p. Any malformed input —
// truncated, adversarial, or merely inconsistent — returns a typed error
// (the codec sentinels or ErrBadPayload); no input can panic the decoder
// or produce a payload that later panics Densify. Decoding into a reused
// Payload reuses its buffers' capacity (Reset first).
func (p *Payload) Unmarshal(d *Decoder) error {
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			p.Enc = Encoding(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			if v > math.MaxUint32 {
				return fmt.Errorf("wire: payload dimension %d overflows: %w", v, ErrBadPayload)
			}
			p.Dim = uint32(v)
		case 3:
			v, err := d.DoublesInto(p.Dense)
			if err != nil {
				return err
			}
			p.Dense = v
		case 4:
			v, err := d.Uint32sInto(p.Indices)
			if err != nil {
				return err
			}
			p.Indices = v
		case 5:
			v, err := d.DoublesInto(p.Values)
			if err != nil {
				return err
			}
			p.Values = v
		case 6:
			v, err := d.Float64()
			if err != nil {
				return err
			}
			p.Scale = v
		case 7:
			v, err := d.Float64()
			if err != nil {
				return err
			}
			p.Offset = v
		case 8:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			if v > math.MaxUint8 {
				return fmt.Errorf("wire: payload bits %d overflows: %w", v, ErrBadPayload)
			}
			p.Bits = uint8(v)
		case 9:
			v, err := d.BytesField()
			if err != nil {
				return err
			}
			p.Codes = append(p.Codes[:0], v...)
		default:
			if err := d.Skip(w); err != nil {
				return err
			}
		}
	}
	return p.Validate()
}

// codeWidth is the bytes-per-coordinate of the quantized encoding.
func (p *Payload) codeWidth() int {
	if p.Bits <= 8 {
		return 1
	}
	return 2
}

// Validate checks the structural invariants of the active encoding and
// returns an error wrapping ErrBadPayload on any violation.
func (p *Payload) Validate() error {
	switch p.Enc {
	case EncDense:
		if len(p.Dense) != int(p.Dim) {
			return fmt.Errorf("wire: dense payload has %d values for dim %d: %w", len(p.Dense), p.Dim, ErrBadPayload)
		}
	case EncSparse, EncSubset:
		if len(p.Indices) != len(p.Values) {
			return fmt.Errorf("wire: %s payload has %d indices, %d values: %w", p.Enc, len(p.Indices), len(p.Values), ErrBadPayload)
		}
		if len(p.Indices) > int(p.Dim) {
			return fmt.Errorf("wire: %s payload has %d entries for dim %d: %w", p.Enc, len(p.Indices), p.Dim, ErrBadPayload)
		}
		prev := int64(-1)
		for _, idx := range p.Indices {
			if int64(idx) <= prev || idx >= p.Dim {
				return fmt.Errorf("wire: %s index %d out of order or out of range [0,%d): %w", p.Enc, idx, p.Dim, ErrBadPayload)
			}
			prev = int64(idx)
		}
	case EncQuant:
		if p.Bits < 1 || p.Bits > 16 {
			return fmt.Errorf("wire: quantized payload bits %d outside [1,16]: %w", p.Bits, ErrBadPayload)
		}
		if want := int(p.Dim) * p.codeWidth(); len(p.Codes) != want {
			return fmt.Errorf("wire: quantized payload has %d code bytes, want %d: %w", len(p.Codes), want, ErrBadPayload)
		}
		if math.IsNaN(p.Scale) || math.IsInf(p.Scale, 0) || p.Scale < 0 {
			return fmt.Errorf("wire: quantized payload scale %v invalid: %w", p.Scale, ErrBadPayload)
		}
		if math.IsNaN(p.Offset) || math.IsInf(p.Offset, 0) {
			return fmt.Errorf("wire: quantized payload offset %v invalid: %w", p.Offset, ErrBadPayload)
		}
	case EncFloat16:
		if len(p.Codes) != 2*int(p.Dim) {
			return fmt.Errorf("wire: float16 payload has %d code bytes for dim %d: %w", len(p.Codes), p.Dim, ErrBadPayload)
		}
	default:
		return fmt.Errorf("wire: unknown payload encoding %d: %w", uint8(p.Enc), ErrBadPayload)
	}
	return nil
}

// Densify reconstructs the dense float64 vector from any encoding into dst
// (grown as needed) and returns it. The payload must be valid (Unmarshal
// validates; hand-built payloads should call Validate first) — Densify
// re-checks and returns an error rather than panicking on bad shapes.
func (p *Payload) Densify(dst []float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Enc == EncSubset {
		// A subset payload is a delta against the current global values of
		// its unlisted coordinates; there is no base here to fill them from.
		return nil, fmt.Errorf("wire: subset payload cannot densify without a base vector: %w", ErrBadPayload)
	}
	n := int(p.Dim)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	switch p.Enc {
	case EncDense:
		copy(dst, p.Dense)
	case EncSparse:
		for i := range dst {
			dst[i] = 0
		}
		for i, idx := range p.Indices {
			dst[idx] = p.Values[i]
		}
	case EncQuant:
		w := p.codeWidth()
		for i := 0; i < n; i++ {
			var code uint16
			if w == 1 {
				code = uint16(p.Codes[i])
			} else {
				code = uint16(p.Codes[2*i]) | uint16(p.Codes[2*i+1])<<8
			}
			dst[i] = p.Offset + p.Scale*float64(code)
		}
	case EncFloat16:
		for i := 0; i < n; i++ {
			bits := uint16(p.Codes[2*i]) | uint16(p.Codes[2*i+1])<<8
			dst[i] = Float16ToFloat64(bits)
		}
	}
	return dst, nil
}

// WireBytes returns the exact encoded size of the payload body, used by
// the communication-volume accounting. It is EncodedLen, computed without
// encoding anything.
func (p *Payload) WireBytes() int { return p.EncodedLen() }

// Float16FromFloat64 converts v to IEEE-754 binary16 bits with
// round-to-nearest-even, saturating overflow to ±Inf and preserving NaN.
func Float16FromFloat64(v float64) uint16 {
	// The double → single conversion already rounds to nearest even and is
	// exact for every value binary16 can represent, so the two-step
	// conversion equals a direct double → half rounding.
	return Float16FromFloat32(float32(v))
}

// Float16FromFloat32 converts v to IEEE-754 binary16 bits with
// round-to-nearest-even, saturating overflow to ±Inf and preserving NaN.
// Float16FromFloat64 is exactly this applied to float32(v), so the f32
// aggregation path's downlink encode is bit-equivalent to widening first.
func Float16FromFloat32(v float32) uint16 {
	b := math.Float32bits(v)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff
	if b>>23&0xff == 0xff { // Inf or NaN
		if mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	}
	if exp >= 0x1f { // overflow → ±Inf
		return sign | 0x7c00
	}
	if exp <= 0 { // subnormal half (or underflow to zero)
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		rem := mant & (1<<shift - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return sign | half
	}
	half := sign | uint16(exp)<<10 | uint16(mant>>13)
	rem := mant & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
		half++ // carry may roll into the exponent; that is the correct rounding
	}
	return half
}

// Float16ToFloat64 converts IEEE-754 binary16 bits to float64, exactly.
func Float16ToFloat64(h uint16) float64 {
	sign := float64(1)
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h >> 10 & 0x1f)
	mant := int(h & 0x3ff)
	switch exp {
	case 0: // zero or subnormal: mant · 2^-24
		return sign * float64(mant) * 0x1p-24
	case 0x1f:
		if mant != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	default:
		return sign * float64(mant+0x400) * math.Ldexp(1, exp-25)
	}
}

// Uint32s encodes field as a packed block of little-endian fixed32 values,
// the index stream of the sparse encoding.
func (e *Encoder) Uint32s(field int, v []uint32) {
	e.tag(field, typeBytes)
	e.varint(uint64(4 * len(v)))
	for _, x := range v {
		e.buf = append(e.buf, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
}

// Uint32s reads a packed block of little-endian fixed32 values.
func (d *Decoder) Uint32s() ([]uint32, error) { return d.Uint32sInto(nil) }

// Uint32sInto reads a packed block of little-endian fixed32 values into
// dst, allocating only when its capacity is insufficient.
func (d *Decoder) Uint32sInto(dst []uint32) ([]uint32, error) {
	b, err := d.BytesField()
	if err != nil {
		return nil, err
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("wire: packed uint32 length %d not a multiple of 4", len(b))
	}
	n := len(b) / 4
	if cap(dst) < n || dst == nil {
		dst = make([]uint32, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
	}
	return dst, nil
}

// subEncoders recycles the scratch encoders behind Encoder.Message so
// nesting a message costs a copy, not an O(size) allocation per call.
var subEncoders = sync.Pool{New: func() any { return new(Encoder) }}

// Message encodes m as a length-delimited nested message. Types that know
// their encoded size ahead of time (Payload) should prefer EncodeInto,
// which writes the length prefix directly and skips the copy too.
func (e *Encoder) Message(field int, m interface{ Marshal(*Encoder) }) {
	sub := subEncoders.Get().(*Encoder)
	sub.Reset()
	m.Marshal(sub)
	e.BytesField(field, sub.Bytes())
	subEncoders.Put(sub)
}
