package wire

import (
	"errors"
	"math"
	"testing"
)

func TestModelChunkRoundTrip(t *testing.T) {
	in := ModelChunk{
		ClientID: 9, Round: 3, Version: 12, Index: 2, Count: 5,
		Lo: 64, Hi: 96, Dim: 160, NumSamples: 48,
		Payload: &Payload{Enc: EncDense, Dim: 32, Dense: make([]float64, 32)},
	}
	for i := range in.Payload.Dense {
		in.Payload.Dense[i] = float64(i) * 0.25 * math.Pi
	}
	e := NewEncoder(nil)
	in.Marshal(e)
	var out ModelChunk
	if err := out.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out.ClientID != in.ClientID || out.Round != in.Round || out.Version != in.Version ||
		out.Index != in.Index || out.Count != in.Count ||
		out.Lo != in.Lo || out.Hi != in.Hi || out.Dim != in.Dim || out.NumSamples != in.NumSamples {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if len(out.Payload.Dense) != len(in.Payload.Dense) {
		t.Fatalf("payload length %d, want %d", len(out.Payload.Dense), len(in.Payload.Dense))
	}
	for i := range in.Payload.Dense {
		if math.Float64bits(out.Payload.Dense[i]) != math.Float64bits(in.Payload.Dense[i]) {
			t.Fatalf("value %d not bit-identical", i)
		}
	}

	// Reuse across a stream: the second decode must not leak the first
	// chunk's fields and must recycle the payload buffer.
	in2 := ModelChunk{
		Round: 4, Index: 0, Count: 1, Lo: 0, Hi: 2, Dim: 2,
		Payload: &Payload{Enc: EncFloat16, Dim: 2, Codes: []byte{0x00, 0x3c, 0x00, 0xc0}},
	}
	e2 := NewEncoder(nil)
	in2.Marshal(e2)
	if err := out.Unmarshal(NewDecoder(e2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out.NumSamples != 0 || out.Version != 0 || out.ClientID != 0 {
		t.Fatalf("reused decode leaked previous fields: %+v", out)
	}
	if out.Payload.Enc != EncFloat16 || len(out.Payload.Dense) != 0 {
		t.Fatalf("reused payload leaked previous encoding: %+v", out.Payload)
	}
}

func TestModelChunkValidate(t *testing.T) {
	ok := func() ModelChunk {
		return ModelChunk{
			Round: 1, Index: 0, Count: 2, Lo: 0, Hi: 4, Dim: 8,
			Payload: &Payload{Enc: EncDense, Dim: 4, Dense: make([]float64, 4)},
		}
	}
	if err := (func() error { c := ok(); return c.Validate() })(); err != nil {
		t.Fatalf("valid chunk rejected: %v", err)
	}
	cases := map[string]func(*ModelChunk){
		"zero count":       func(c *ModelChunk) { c.Count = 0 },
		"index past count": func(c *ModelChunk) { c.Index = 2 },
		"inverted range":   func(c *ModelChunk) { c.Lo, c.Hi = 4, 0 },
		"range past dim":   func(c *ModelChunk) { c.Hi = 9; c.Payload.Dim = 9 },
		"missing payload":  func(c *ModelChunk) { c.Payload = nil },
		"payload dim off":  func(c *ModelChunk) { c.Payload.Dim = 3 },
		"subset payload": func(c *ModelChunk) {
			c.Payload = &Payload{Enc: EncSubset, Dim: 4, Indices: []uint32{0}, Values: []float64{1}}
		},
		"invalid payload": func(c *ModelChunk) { c.Payload.Dense = c.Payload.Dense[:2] },
	}
	for name, mutate := range cases {
		c := ok()
		mutate(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadPayload) {
			t.Errorf("%s: got %v, want ErrBadPayload", name, err)
		}
	}
}

func TestChunkAckRoundTrip(t *testing.T) {
	in := ChunkAck{ClientID: 3, Round: 9, Index: 17}
	e := NewEncoder(nil)
	in.Marshal(e)
	var out ChunkAck
	if err := out.Unmarshal(NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round-trip %+v -> %+v", in, out)
	}
}

func TestChunkPlanAndRange(t *testing.T) {
	cases := []struct {
		dim, chunk, want int
	}{
		{10, 4, 3}, {8, 4, 2}, {1, 4, 1}, {4, 4, 1}, {0, 4, 1}, {10, 0, 1},
		{1 << 20, 16384, 64},
	}
	for _, c := range cases {
		if got := ChunkPlan(c.dim, c.chunk); got != c.want {
			t.Errorf("ChunkPlan(%d, %d) = %d, want %d", c.dim, c.chunk, got, c.want)
		}
	}
	// Ranges must tile [0, dim) exactly, in order, with no overlap.
	for _, geo := range []struct{ dim, chunk int }{{10, 4}, {8, 4}, {1 << 16, 4096}, {7, 3}} {
		n := ChunkPlan(geo.dim, geo.chunk)
		next := 0
		for i := 0; i < n; i++ {
			lo, hi := ChunkRange(geo.dim, geo.chunk, i)
			if lo != next || hi < lo || hi > geo.dim {
				t.Fatalf("dim=%d chunk=%d: chunk %d range [%d,%d) breaks the tiling at %d",
					geo.dim, geo.chunk, i, lo, hi, next)
			}
			next = hi
		}
		if next != geo.dim {
			t.Fatalf("dim=%d chunk=%d: tiling ends at %d", geo.dim, geo.chunk, next)
		}
	}
}

// TestSubsetPayloadWire pins the subset encoding's codec behavior: exact
// EncodedLen, round-trip, Densify refusal, and validation of unsorted
// indices.
func TestSubsetPayloadWire(t *testing.T) {
	p := Payload{Enc: EncSubset, Dim: 100, Indices: []uint32{3, 50, 99}, Values: []float64{1, -2, 0.5}}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid subset rejected: %v", err)
	}
	e := NewEncoder(nil)
	p.EncodeInto(e, 1)
	d := NewDecoder(e.Bytes())
	if _, _, err := d.Tag(); err != nil {
		t.Fatal(err)
	}
	body, err := d.BytesField()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != p.EncodedLen() {
		t.Fatalf("body %d bytes, EncodedLen says %d", len(body), p.EncodedLen())
	}
	var q Payload
	if err := q.Unmarshal(NewDecoder(body)); err != nil {
		t.Fatal(err)
	}
	if q.Enc != EncSubset || q.Dim != 100 || len(q.Indices) != 3 {
		t.Fatalf("round-trip mangled payload: %+v", q)
	}
	if _, err := q.Densify(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("subset Densify must refuse with ErrBadPayload, got %v", err)
	}
	bad := Payload{Enc: EncSubset, Dim: 10, Indices: []uint32{5, 2}, Values: []float64{1, 2}}
	if err := bad.Validate(); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("unsorted subset indices accepted: %v", err)
	}
}
