package wire

import "fmt"

// ModelChunk carries one fixed-size slice of a model vector: coordinates
// [Lo, Hi) of a Dim-dimensional LocalUpdate primal (uplink) or
// GlobalModel weights (downlink), as chunk Index of Count in the
// sequence. Chunks let a model far larger than one wire message — or one
// resident server buffer — cross the transport as a stream: the receiver
// folds each chunk into an O(chunk) window and releases it, so peak
// memory tracks the chunk size, not the model dimension.
//
// NumSamples and Version ride every chunk (they are a few varint bytes
// against a multi-KiB payload): the server needs every contributor's
// sample count before the first fold to compute the FedAvg weights, and
// repeating them makes each chunk self-describing — a retried chunk
// carries everything needed to re-admit it.
type ModelChunk struct {
	ClientID   uint32 // producing client (uplink); unused on downlink
	Round      uint32
	Version    uint64 // base model version the chunked vector derives from
	Index      uint32 // chunk index in [0, Count)
	Count      uint32 // total chunks of the sequence
	Lo, Hi     uint32 // coordinate range [Lo, Hi) of the full vector
	Dim        uint32 // full model dimension the sequence reassembles
	NumSamples uint64 // uplink fold mass (the LocalUpdate.NumSamples echo)
	// Payload holds the chunk's values over [Lo, Hi): Payload.Dim == Hi-Lo.
	// Dense and element-wise encodings (float16, quantized) are valid —
	// they decode coordinate-at-a-time, so chunking cannot change a bit.
	// A subset payload is not: its indices are relative to the full model
	// and it rides a whole LocalUpdate, never a chunk.
	Payload *Payload
}

// Validate checks internal consistency, wrapping ErrBadPayload so
// transport decode paths surface one typed sentinel for malformed input.
func (c *ModelChunk) Validate() error {
	if c.Count == 0 {
		return fmt.Errorf("wire: chunk with zero sequence length: %w", ErrBadPayload)
	}
	if c.Index >= c.Count {
		return fmt.Errorf("wire: chunk index %d out of sequence length %d: %w", c.Index, c.Count, ErrBadPayload)
	}
	if c.Hi < c.Lo || c.Hi > c.Dim {
		return fmt.Errorf("wire: chunk range [%d,%d) escapes dimension %d: %w", c.Lo, c.Hi, c.Dim, ErrBadPayload)
	}
	if c.Payload == nil {
		return fmt.Errorf("wire: chunk without a payload: %w", ErrBadPayload)
	}
	if c.Payload.Enc == EncSubset {
		return fmt.Errorf("wire: subset payload cannot ride a chunk: %w", ErrBadPayload)
	}
	if c.Payload.Dim != c.Hi-c.Lo {
		return fmt.Errorf("wire: chunk payload dimension %d for range [%d,%d): %w",
			c.Payload.Dim, c.Lo, c.Hi, ErrBadPayload)
	}
	return c.Payload.Validate()
}

// Reset clears c for reuse, keeping the payload's buffer capacity.
func (c *ModelChunk) Reset() {
	p := c.Payload
	if p != nil {
		p.Reset()
	}
	*c = ModelChunk{Payload: p}
}

// Marshal encodes c.
func (c *ModelChunk) Marshal(e *Encoder) {
	e.Uint64(1, uint64(c.ClientID))
	e.Uint64(2, uint64(c.Round))
	if c.Version > 0 {
		e.Uint64(3, c.Version)
	}
	e.Uint64(4, uint64(c.Index))
	e.Uint64(5, uint64(c.Count))
	e.Uint64(6, uint64(c.Lo))
	e.Uint64(7, uint64(c.Hi))
	e.Uint64(8, uint64(c.Dim))
	if c.NumSamples > 0 {
		e.Uint64(9, c.NumSamples)
	}
	if c.Payload != nil {
		c.Payload.EncodeInto(e, 10)
	}
}

// Unmarshal decodes c, ignoring unknown fields. c is Reset first, so a
// struct reused across a stream reuses payload capacity without leaking
// a previous chunk's fields, and the decoded chunk is validated before
// returning — a malformed chunk cannot enter a fold window.
func (c *ModelChunk) Unmarshal(d *Decoder) error {
	c.Reset()
	seenPayload := false
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			c.ClientID = uint32(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			c.Round = uint32(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			c.Version = v
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			c.Index = uint32(v)
		case 5:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			c.Count = uint32(v)
		case 6:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			c.Lo = uint32(v)
		case 7:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			c.Hi = uint32(v)
		case 8:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			c.Dim = uint32(v)
		case 9:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			c.NumSamples = v
		case 10:
			b, err := d.BytesField()
			if err != nil {
				return err
			}
			if c.Payload == nil {
				c.Payload = &Payload{}
			}
			if err := c.Payload.Unmarshal(NewDecoder(b)); err != nil {
				return err
			}
			seenPayload = true
		default:
			if err := d.Skip(w); err != nil {
				return err
			}
		}
	}
	if !seenPayload {
		// Reset left a recycled (empty) payload behind; an absent field 10
		// must decode as "no payload", not as last message's buffer.
		c.Payload = nil
	}
	return c.Validate()
}

// ChunkAck acknowledges one received (and folded) chunk back to its
// sender — the flow-control signal of the streaming path. The sender
// holds chunk Index until the ack arrives and retries it on a timeout,
// so a dropped chunk costs one chunk retransmit, never a whole model.
type ChunkAck struct {
	ClientID uint32
	Round    uint32
	Index    uint32
}

// Marshal encodes a.
func (a *ChunkAck) Marshal(e *Encoder) {
	e.Uint64(1, uint64(a.ClientID))
	e.Uint64(2, uint64(a.Round))
	e.Uint64(3, uint64(a.Index))
}

// Unmarshal decodes a, ignoring unknown fields.
func (a *ChunkAck) Unmarshal(d *Decoder) error {
	*a = ChunkAck{}
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			a.ClientID = uint32(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			a.Round = uint32(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			a.Index = uint32(v)
		default:
			if err := d.Skip(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// ChunkPlan returns the number of fixed-size chunks covering dim
// coordinates at the given chunk size: ceil(dim/chunk), with the final
// chunk possibly short. A zero-dimensional vector still takes one
// (empty) chunk so the sequence is never empty.
func ChunkPlan(dim, chunk int) int {
	if chunk <= 0 || dim <= 0 {
		return 1
	}
	return (dim + chunk - 1) / chunk
}

// ChunkRange returns the coordinate range [lo, hi) of chunk index i in
// the ChunkPlan(dim, chunk) sequence.
func ChunkRange(dim, chunk, i int) (lo, hi int) {
	if chunk <= 0 {
		return 0, dim
	}
	lo = i * chunk
	hi = lo + chunk
	if hi > dim {
		hi = dim
	}
	if lo > dim {
		lo = dim
	}
	return lo, hi
}
