package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which MatMul runs
// serially; spawning goroutines for tiny products costs more than it saves.
const parallelThreshold = 64 * 1024

// MatMul returns the matrix product A·B for rank-2 tensors A [m,k] and
// B [k,n]. Large products are partitioned by output row across
// runtime.GOMAXPROCS workers.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	work := m * n * k
	if work < parallelThreshold {
		matmulRows(a.data, b.data, out.data, 0, m, k, n)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(a.data, b.data, out.data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// matmulRows computes rows [lo,hi) of C = A·B using an ikj loop order that
// streams through B row-wise for cache friendliness.
func matmulRows(a, b, c []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			aip := ai[p]
			if aip == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += aip * bv
			}
		}
	}
}

// MatMulTransA returns Aᵀ·B for A [k,m], B [k,n] without materializing the
// transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransA requires rank-2 operands")
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA dimension mismatch %v x %v", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := out.data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns A·Bᵀ for A [m,k], B [n,k] without materializing the
// transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransB requires rank-2 operands")
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransB dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		ci := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] = s
		}
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}
