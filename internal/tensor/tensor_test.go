package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randTensor(r *rng.RNG, shape ...int) *Tensor {
	t := New(shape...)
	r.FillNormal(t.Data(), 0, 1)
	return t
}

func TestNewShapesAndSize(t *testing.T) {
	cases := []struct {
		shape []int
		size  int
	}{
		{[]int{}, 1},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4}, 24},
		{[]int{0, 5}, 0},
	}
	for _, c := range cases {
		x := New(c.shape...)
		if x.Size() != c.size {
			t.Errorf("New(%v).Size() = %d, want %d", c.shape, x.Size(), c.size)
		}
		if x.Rank() != len(c.shape) {
			t.Errorf("New(%v).Rank() = %d, want %d", c.shape, x.Rank(), len(c.shape))
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	v := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				x.Set(v, i, j, k)
				v++
			}
		}
	}
	// Row-major: data should be 0..23 in order.
	for i, d := range x.Data() {
		if d != float64(i) {
			t.Fatalf("row-major layout broken at %d: %v", i, d)
		}
	}
	if x.At(1, 2, 3) != 23 {
		t.Fatalf("At(1,2,3) = %v, want 23", x.At(1, 2, 3))
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched length")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape does not share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad reshape")
		}
	}()
	x.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := a.Add(b).Data(); got[3] != 44 {
		t.Errorf("Add: %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 9 {
		t.Errorf("Sub: %v", got)
	}
	if got := a.Mul(b).Data(); got[2] != 90 {
		t.Errorf("Mul: %v", got)
	}
	if got := a.Scale(2).Data(); got[1] != 4 {
		t.Errorf("Scale: %v", got)
	}
	c := a.Clone()
	c.AXPY(0.5, b)
	if c.At(0, 0) != 6 {
		t.Errorf("AXPY: %v", c.Data())
	}
	if d := a.Dot(b); d != 1*10+2*20+3*30+4*40 {
		t.Errorf("Dot = %v", d)
	}
	if n := FromSlice([]float64{3, 4}, 2).Norm2(); !almostEqual(n, 5, 1e-12) {
		t.Errorf("Norm2 = %v", n)
	}
	if s := a.Sum(); s != 10 {
		t.Errorf("Sum = %v", s)
	}
	if m := FromSlice([]float64{-7, 3}, 2).MaxAbs(); m != 7 {
		t.Errorf("MaxAbs = %v", m)
	}
	if i := FromSlice([]float64{1, 9, 9, 2}, 4).ArgMax(); i != 1 {
		t.Errorf("ArgMax = %d, want first max", i)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestRowAndSliceViews(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Row(1)
	if r.At(0) != 4 || r.Size() != 3 {
		t.Fatalf("Row view wrong: %v", r.Data())
	}
	r.Set(40, 0)
	if x.At(1, 0) != 40 {
		t.Fatal("Row view does not share storage")
	}
	b := New(4, 2, 3, 3)
	s := b.Slice(2)
	if s.Rank() != 3 || s.Size() != 18 {
		t.Fatalf("Slice shape wrong: %v", s.Shape())
	}
	s.Data()[0] = 7
	if b.At(2, 0, 0, 0) != 7 {
		t.Fatal("Slice does not share storage")
	}
}

// Property: addition commutes.
func TestAddCommutative(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%32) + 1
		r := rng.New(seed)
		a, b := randTensor(r, n), randTensor(r, n)
		return a.Add(b).EqualWithin(b.Add(a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: (a+b)+c == a+(b+c) within FP tolerance.
func TestAddAssociative(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%32) + 1
		r := rng.New(seed)
		a, b, c := randTensor(r, n), randTensor(r, n), randTensor(r, n)
		return a.Add(b).Add(c).EqualWithin(a.Add(b.Add(c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and ||x||² = x·x.
func TestDotProperties(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%64) + 1
		r := rng.New(seed)
		a, b := randTensor(r, n), randTensor(r, n)
		if !almostEqual(a.Dot(b), b.Dot(a), 1e-9) {
			return false
		}
		nrm := a.Norm2()
		return almostEqual(nrm*nrm, a.Dot(a), 1e-8*(1+nrm*nrm))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := rng.New(5)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 16, 16}, {33, 17, 29}} {
		a := randTensor(r, dims[0], dims[1])
		b := randTensor(r, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.EqualWithin(want, 1e-9) {
			t.Fatalf("MatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulParallelPathMatchesSerial(t *testing.T) {
	r := rng.New(6)
	// Big enough to trigger the parallel path (m*n*k >= 64k).
	a := randTensor(r, 64, 48)
	b := randTensor(r, 48, 64)
	got := MatMul(a, b)
	want := naiveMatMul(a, b)
	if !got.EqualWithin(want, 1e-8) {
		t.Fatal("parallel MatMul diverges from naive")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestMatMulTransA(t *testing.T) {
	r := rng.New(7)
	a := randTensor(r, 6, 4) // Aᵀ is [4,6]
	b := randTensor(r, 6, 5)
	got := MatMulTransA(a, b)
	want := naiveMatMul(Transpose(a), b)
	if !got.EqualWithin(want, 1e-9) {
		t.Fatal("MatMulTransA mismatch")
	}
}

func TestMatMulTransB(t *testing.T) {
	r := rng.New(8)
	a := randTensor(r, 3, 7)
	b := randTensor(r, 5, 7) // Bᵀ is [7,5]
	got := MatMulTransB(a, b)
	want := naiveMatMul(a, Transpose(b))
	if !got.EqualWithin(want, 1e-9) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64, rm, rn uint8) bool {
		m, n := int(rm%8)+1, int(rn%8)+1
		r := rng.New(seed)
		a := randTensor(r, m, n)
		return Transpose(Transpose(a)).EqualWithin(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConvOut(t *testing.T) {
	if ConvOut(28, 5, 1, 0) != 24 {
		t.Fatal("ConvOut(28,5,1,0)")
	}
	if ConvOut(28, 5, 1, 2) != 28 {
		t.Fatal("ConvOut(28,5,1,2)")
	}
	if ConvOut(24, 2, 2, 0) != 12 {
		t.Fatal("ConvOut(24,2,2,0)")
	}
}

// naiveConv2D is a direct 7-loop reference convolution for one sample.
func naiveConv2D(x, w, bias *Tensor, stride, pad int) *Tensor {
	cin, h, wd := x.Dim(0), x.Dim(1), x.Dim(2)
	cout, kh, kw := w.Dim(0), w.Dim(2), w.Dim(3)
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wd, kw, stride, pad)
	out := New(cout, oh, ow)
	for co := 0; co < cout; co++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ci := 0; ci < cin; ci++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy, ix := oy*stride+ky-pad, ox*stride+kx-pad
							if iy < 0 || iy >= h || ix < 0 || ix >= wd {
								continue
							}
							s += x.At(ci, iy, ix) * w.At(co, ci, ky, kx)
						}
					}
				}
				if bias != nil {
					s += bias.At(co)
				}
				out.Set(s, co, oy, ox)
			}
		}
	}
	return out
}

func TestConv2DForwardAgainstNaive(t *testing.T) {
	r := rng.New(9)
	cases := []struct{ n, cin, h, w, cout, k, stride, pad int }{
		{1, 1, 6, 6, 1, 3, 1, 0},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{3, 2, 7, 9, 5, 5, 2, 2},
		{1, 1, 5, 5, 2, 5, 1, 0},
	}
	for _, c := range cases {
		x := randTensor(r, c.n, c.cin, c.h, c.w)
		w := randTensor(r, c.cout, c.cin, c.k, c.k)
		b := randTensor(r, c.cout)
		y, cols := Conv2DForward(x, w, b, c.stride, c.pad)
		if len(cols) != c.n {
			t.Fatalf("cols count %d != batch %d", len(cols), c.n)
		}
		for i := 0; i < c.n; i++ {
			want := naiveConv2D(x.Slice(i), w, b, c.stride, c.pad)
			if !y.Slice(i).EqualWithin(want, 1e-9) {
				t.Fatalf("Conv2DForward mismatch on case %+v sample %d", c, i)
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. <Im2Col(x), y> == <x, Col2Im(y)>.
func TestIm2ColCol2ImAdjoint(t *testing.T) {
	r := rng.New(10)
	for trial := 0; trial < 20; trial++ {
		c, h, w := 1+r.Intn(3), 4+r.Intn(5), 4+r.Intn(5)
		k := 2 + r.Intn(2)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		if ConvOut(h, k, stride, pad) <= 0 || ConvOut(w, k, stride, pad) <= 0 {
			continue
		}
		x := randTensor(r, c, h, w)
		cx := Im2Col(x, k, k, stride, pad)
		y := randTensor(r, cx.Dim(0), cx.Dim(1))
		lhs := cx.Dot(y)
		rhs := x.Dot(Col2Im(y, c, h, w, k, k, stride, pad))
		if !almostEqual(lhs, rhs, 1e-8*(1+math.Abs(lhs))) {
			t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
		}
	}
}

// TestConv2DBackwardNumerical verifies conv gradients with finite differences.
func TestConv2DBackwardNumerical(t *testing.T) {
	r := rng.New(11)
	n, cin, h, wd := 2, 2, 5, 5
	cout, k, stride, pad := 3, 3, 1, 1
	x := randTensor(r, n, cin, h, wd)
	w := randTensor(r, cout, cin, k, k)
	b := randTensor(r, cout)

	// Scalar loss = sum of conv output weighted by fixed random coefficients.
	coef := randTensor(r, n, cout, ConvOut(h, k, stride, pad), ConvOut(wd, k, stride, pad))
	loss := func() float64 {
		y, _ := Conv2DForward(x, w, b, stride, pad)
		return y.Dot(coef)
	}
	_, cols := Conv2DForward(x, w, b, stride, pad)
	dx, dw, db := Conv2DBackward(coef, x, w, cols, true, stride, pad)

	const eps = 1e-6
	checkGrad := func(name string, param *Tensor, grad *Tensor, samples int) {
		for s := 0; s < samples; s++ {
			i := r.Intn(param.Size())
			orig := param.Data()[i]
			param.Data()[i] = orig + eps
			lp := loss()
			param.Data()[i] = orig - eps
			lm := loss()
			param.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if !almostEqual(num, grad.Data()[i], 1e-4*(1+math.Abs(num))) {
				t.Fatalf("%s grad mismatch at %d: numeric %v analytic %v", name, i, num, grad.Data()[i])
			}
		}
	}
	checkGrad("x", x, dx, 20)
	checkGrad("w", w, dw, 20)
	checkGrad("b", b, db, 3)
}

func TestMaxPoolForward(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y, argmax := MaxPool2DForward(x, 2, 2)
	want := []float64{6, 8, 14, 16}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("maxpool output %v, want %v", y.Data(), want)
		}
	}
	wantIdx := []int{5, 7, 13, 15}
	for i, v := range wantIdx {
		if argmax[i] != v {
			t.Fatalf("argmax %v, want %v", argmax, wantIdx)
		}
	}
}

func TestMaxPoolBackwardRoutesGradient(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	_, argmax := MaxPool2DForward(x, 2, 2)
	dy := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := MaxPool2DBackward(dy, argmax, []int{1, 1, 4, 4})
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 1, 3) != 2 || dx.At(0, 0, 3, 1) != 3 || dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("gradient routing wrong: %v", dx.Data())
	}
	if dx.Sum() != dy.Sum() {
		t.Fatal("maxpool backward must conserve gradient mass")
	}
}

func TestMaxPoolNumericalGradient(t *testing.T) {
	r := rng.New(12)
	x := randTensor(r, 2, 2, 6, 6)
	coef := randTensor(r, 2, 2, 3, 3)
	loss := func() float64 {
		y, _ := MaxPool2DForward(x, 2, 2)
		return y.Dot(coef)
	}
	_, argmax := MaxPool2DForward(x, 2, 2)
	dx := MaxPool2DBackward(coef, argmax, x.Shape())
	const eps = 1e-6
	for s := 0; s < 30; s++ {
		i := r.Intn(x.Size())
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp := loss()
		x.Data()[i] = orig - eps
		lm := loss()
		x.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if !almostEqual(num, dx.Data()[i], 1e-4*(1+math.Abs(num))) {
			t.Fatalf("maxpool grad mismatch at %d: numeric %v analytic %v", i, num, dx.Data()[i])
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 128, 128)
	y := randTensor(r, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 8, 1, 28, 28)
	w := randTensor(r, 16, 1, 5, 5)
	bias := randTensor(r, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DForward(x, w, bias, 1, 0)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(x, 5, 5, 1, 2)
	}
}
