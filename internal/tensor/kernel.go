package tensor

import (
	"fmt"
	"math"
)

// ---------------------------------------------------------------------------
// Aggregation kernels.
//
// The federated hot path is a memory-bound fold: every round the server
// combines K cohort updates (K model-sized float64 vectors) into the
// global accumulator. Folding them one update at a time sweeps the
// accumulator through DRAM K times — at 1M+ dimensions the accumulator
// chunk is far bigger than L1/L2, so each sweep re-reads and re-writes
// it from memory and the arithmetic is irrelevant next to the traffic.
//
// The kernels here are cache-blocked K-way folds over flat slices: the
// index space is processed in KernelBlock-sized blocks, and within a
// block all K sources fold before moving on. The block stays resident in
// L1/L2 across the K passes, so the accumulator crosses DRAM once per
// fold instead of K times — the memory traffic drops from roughly
// (2K+K)·8 bytes per element to (K+2)·8, a >2x win at K=8.
//
// Bit-identity is a hard invariant: per element, every kernel performs
// exactly the floating-point operations of the one-update-at-a-time
// loop, in the same order (fold order = source order). Blocking changes
// only the order in which *independent elements* are visited, never the
// operation sequence of any single element, so the result is
// byte-for-byte identical to the naive loop at any block size.
//
// All kernels take (lo, hi) bounds over full backing slices rather than
// pre-sliced views, so a sharded caller can dispatch chunks to workers
// without allocating per-chunk slice headers.

// KernelBlock is the fold block size in elements: 2048 float64s = 16 KiB,
// half a typical 32 KiB L1d, leaving room for one source block alongside
// the accumulator block.
const KernelBlock = 2048

// FoldK computes the K-way weighted accumulation
//
//	dst[i] = Σ_k weights[k]·srcs[k][i]   for i in [lo,hi)
//
// zeroing dst first and folding sources in order — per element exactly
// the operations of a zero sweep followed by K axpy sweeps, in one
// cache-blocked pass. This is the FedAvg batch kernel: weights are the
// normalized sample counts.
// Sources fold pairwise: d[i] = d[i] + w1·s1[i] + w2·s2[i] is evaluated
// left-to-right (Go never reassociates floats), so the operation sequence
// per element is exactly that of two single-source sweeps — still
// bit-identical — while halving the accumulator load/stores and giving
// the two products independent pipelines.
func FoldK(dst []float64, lo, hi int, srcs [][]float64, weights []float64) {
	for b := lo; b < hi; b += KernelBlock {
		be := min(b+KernelBlock, hi)
		d := dst[b:be]
		for i := range d {
			d[i] = 0
		}
		k := 0
		for ; k+1 < len(srcs); k += 2 {
			w1, w2 := weights[k], weights[k+1]
			s1 := srcs[k][b:be]
			s2 := srcs[k+1][b:be]
			_ = s2[len(d)-1] // one bound check for the pair
			for i := range d {
				d[i] = d[i] + w1*s1[i] + w2*s2[i]
			}
		}
		for ; k < len(srcs); k++ {
			w := weights[k]
			s := srcs[k][b:be]
			for i, v := range s {
				d[i] += w * v
			}
		}
	}
}

// FoldKScaled applies K sequential convex folds
//
//	dst[i] ← (1−alphas[k])·dst[i] + alphas[k]·srcs[k][i]   for k = 0..K−1
//
// in one cache-blocked pass: within a block, source k fully folds before
// source k+1, so each element sees exactly the operation sequence of K
// separate whole-vector sweeps. This is the staleness-weighted buffered
// rule batched over one release.
func FoldKScaled(dst []float64, lo, hi int, srcs [][]float64, alphas []float64) {
	for b := lo; b < hi; b += KernelBlock {
		be := min(b+KernelBlock, hi)
		d := dst[b:be]
		for k, src := range srcs {
			a := alphas[k]
			na := 1 - a
			s := src[b:be]
			for i, v := range s {
				d[i] = na*d[i] + a*v
			}
		}
	}
}

// FoldKDual computes the ADMM consensus fold
//
//	dst[i] = Σ_k invP·(zs[k][i] − ds[k][i]/rho)   for i in [lo,hi)
//
// zero-then-accumulate in source order, cache-blocked. The division by
// rho is kept per element (not precomputed as a reciprocal) so the
// result is bit-identical to the pre-kernel serial loop.
// Clients fold pairwise like FoldK: the left-to-right add sequence keeps
// the per-element operations exactly those of the one-client-at-a-time
// sweeps while overlapping the two divisions.
func FoldKDual(dst []float64, lo, hi int, zs, ds [][]float64, invP, rho float64) {
	for b := lo; b < hi; b += KernelBlock {
		be := min(b+KernelBlock, hi)
		d := dst[b:be]
		for i := range d {
			d[i] = 0
		}
		k := 0
		for ; k+1 < len(zs); k += 2 {
			z1, z2 := zs[k][b:be], zs[k+1][b:be]
			l1, l2 := ds[k][b:be], ds[k+1][b:be]
			_ = z2[len(d)-1]
			_ = l2[len(d)-1]
			for i := range d {
				d[i] = d[i] + invP*(z1[i]-l1[i]/rho) + invP*(z2[i]-l2[i]/rho)
			}
		}
		for ; k < len(zs); k++ {
			z := zs[k][b:be]
			lam := ds[k][b:be]
			for i := range d {
				d[i] += invP * (z[i] - lam[i]/rho)
			}
		}
	}
}

// DualStepK applies the IIADMM mirror-dual update (Algorithm 1 line 6)
//
//	ds[k][i] += rho·(w[i] − zs[k][i])
//
// for every k over [lo,hi), cache-blocked so the shared w block is read
// once per block instead of once per client sweep.
func DualStepK(ds [][]float64, w []float64, lo, hi int, zs [][]float64, rho float64) {
	for b := lo; b < hi; b += KernelBlock {
		be := min(b+KernelBlock, hi)
		wb := w[b:be]
		for k, zk := range zs {
			z := zk[b:be]
			d := ds[k][b:be]
			for i := range d {
				d[i] += rho * (wb[i] - z[i])
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Fused fold sources.
//
// A FoldSrc is one cohort update as the fold kernels consume it: either
// an already-dense vector or a still-encoded wire payload (half floats
// or affine-quantized codes) that the kernel decodes on the fly, one
// register value at a time, straight into the accumulator. Fusing the
// inversion into the fold removes the intermediate densified buffer —
// the two-pass path writes and re-reads dim·8 bytes per update that the
// fused path never materializes.

// SrcKind discriminates the representations a FoldSrc can carry.
type SrcKind uint8

// Fold source kinds.
const (
	SrcDense   SrcKind = iota // Dense[i], plain float64
	SrcF16                    // Codes: 2 bytes/coord, little-endian binary16
	SrcQuant8                 // Codes: 1 byte/coord, Offset + Scale·code
	SrcQuant16                // Codes: 2 bytes/coord little-endian, same affine map
)

// FoldSrc is one fold input: a vector in dense or encoded form plus its
// fold coefficient (the FedAvg sample weight, or the staleness-weighted
// alpha of the buffered rule).
type FoldSrc struct {
	Kind   SrcKind
	Dense  []float64 // SrcDense
	Codes  []byte    // SrcF16, SrcQuant8, SrcQuant16
	Scale  float64   // SrcQuant*
	Offset float64   // SrcQuant*
	W      float64   // fold coefficient
}

// At decodes coordinate i of the source — the scalar reference the fused
// kernels inline per kind. It is exported for tests and slow paths, not
// for hot loops.
func (s *FoldSrc) At(i int) float64 {
	switch s.Kind {
	case SrcDense:
		return s.Dense[i]
	case SrcF16:
		return Float16To64(uint16(s.Codes[2*i]) | uint16(s.Codes[2*i+1])<<8)
	case SrcQuant8:
		return s.Offset + s.Scale*float64(s.Codes[i])
	case SrcQuant16:
		return s.Offset + s.Scale*float64(uint16(s.Codes[2*i])|uint16(s.Codes[2*i+1])<<8)
	default:
		panic(fmt.Sprintf("tensor: unknown fold source kind %d", s.Kind))
	}
}

// foldAccum adds W·src into d (no zeroing), decoding encoded sources on
// the fly. d holds elements [b, b+len(d)) of the accumulator.
func foldAccum(d []float64, s *FoldSrc, b int) {
	w := s.W
	switch s.Kind {
	case SrcDense:
		src := s.Dense[b : b+len(d)]
		for i, v := range src {
			d[i] += w * v
		}
	case SrcF16:
		c := s.Codes[2*b : 2*(b+len(d))]
		for i := range d {
			d[i] += w * Float16To64(uint16(c[2*i])|uint16(c[2*i+1])<<8)
		}
	case SrcQuant8:
		c := s.Codes[b : b+len(d)]
		off, sc := s.Offset, s.Scale
		for i := range d {
			d[i] += w * (off + sc*float64(c[i]))
		}
	case SrcQuant16:
		c := s.Codes[2*b : 2*(b+len(d))]
		off, sc := s.Offset, s.Scale
		for i := range d {
			d[i] += w * (off + sc*float64(uint16(c[2*i])|uint16(c[2*i+1])<<8))
		}
	}
}

// foldConvex applies d[i] ← (1−a)·d[i] + a·src[i] with on-the-fly decode.
func foldConvex(d []float64, s *FoldSrc, b int) {
	a := s.W
	na := 1 - a
	switch s.Kind {
	case SrcDense:
		src := s.Dense[b : b+len(d)]
		for i, v := range src {
			d[i] = na*d[i] + a*v
		}
	case SrcF16:
		c := s.Codes[2*b : 2*(b+len(d))]
		for i := range d {
			d[i] = na*d[i] + a*Float16To64(uint16(c[2*i])|uint16(c[2*i+1])<<8)
		}
	case SrcQuant8:
		c := s.Codes[b : b+len(d)]
		off, sc := s.Offset, s.Scale
		for i := range d {
			d[i] = na*d[i] + a*(off+sc*float64(c[i]))
		}
	case SrcQuant16:
		c := s.Codes[2*b : 2*(b+len(d))]
		off, sc := s.Offset, s.Scale
		for i := range d {
			d[i] = na*d[i] + a*(off+sc*float64(uint16(c[2*i])|uint16(c[2*i+1])<<8))
		}
	}
}

// FoldKSrc is FoldK over fused sources: dst[i] = Σ_k srcs[k].W·dec_k(i),
// zero-then-accumulate in source order, cache-blocked, decoding encoded
// payloads on the fly. With all-dense sources it is exactly FoldK.
func FoldKSrc(dst []float64, lo, hi int, srcs []FoldSrc) {
	for b := lo; b < hi; b += KernelBlock {
		be := min(b+KernelBlock, hi)
		d := dst[b:be]
		for i := range d {
			d[i] = 0
		}
		for k := range srcs {
			foldAccum(d, &srcs[k], b)
		}
	}
}

// FoldKScaledSrc is FoldKScaled over fused sources: K sequential convex
// folds dst ← (1−W)·dst + W·dec_k in one cache-blocked pass.
func FoldKScaledSrc(dst []float64, lo, hi int, srcs []FoldSrc) {
	for b := lo; b < hi; b += KernelBlock {
		be := min(b+KernelBlock, hi)
		d := dst[b:be]
		for k := range srcs {
			foldConvex(d, &srcs[k], b)
		}
	}
}

// ---------------------------------------------------------------------------
// Float32 aggregation kernels.
//
// The f32 path halves the accumulator's memory footprint and DRAM
// traffic: the global model lives as []float32, sources decode to
// float32 registers, and all arithmetic is single precision. It is NOT
// bit-identical to the f64 path — it trades ~1e-7 relative error per
// fold (bounded by the property tests) for throughput — which is why it
// sits behind Config.AggPrecision and defaults off.

// FoldKSrc32 is FoldKSrc with a float32 accumulator and float32
// arithmetic throughout.
func FoldKSrc32(dst []float32, lo, hi int, srcs []FoldSrc) {
	for b := lo; b < hi; b += KernelBlock {
		be := min(b+KernelBlock, hi)
		d := dst[b:be]
		for i := range d {
			d[i] = 0
		}
		for k := range srcs {
			s := &srcs[k]
			w := float32(s.W)
			switch s.Kind {
			case SrcDense:
				src := s.Dense[b:be]
				for i, v := range src {
					d[i] += w * float32(v)
				}
			default:
				for i := range d {
					d[i] += w * float32(s.At(b+i))
				}
			}
		}
	}
}

// FoldKScaledSrc32 is FoldKScaledSrc with a float32 accumulator.
func FoldKScaledSrc32(dst []float32, lo, hi int, srcs []FoldSrc) {
	for b := lo; b < hi; b += KernelBlock {
		be := min(b+KernelBlock, hi)
		d := dst[b:be]
		for k := range srcs {
			s := &srcs[k]
			a := float32(s.W)
			na := 1 - a
			switch s.Kind {
			case SrcDense:
				src := s.Dense[b:be]
				for i, v := range src {
					d[i] = na*d[i] + a*float32(v)
				}
			default:
				for i := range d {
					d[i] = na*d[i] + a*float32(s.At(b+i))
				}
			}
		}
	}
}

// Widen copies src into dst (grown as needed) converting float32 →
// float64, and returns dst. The widening is exact.
func Widen(dst []float64, src []float32) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = float64(v)
	}
	return dst
}

// Narrow copies src into dst (grown as needed) converting float64 →
// float32 with round-to-nearest-even, and returns dst.
func Narrow(dst []float32, src []float64) []float32 {
	if cap(dst) < len(src) {
		dst = make([]float32, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// ---------------------------------------------------------------------------
// Half-precision decode.

// Float16To64 converts IEEE-754 binary16 bits to float64, exactly. It
// duplicates wire.Float16ToFloat64 so the fused kernels stay free of a
// tensor → wire dependency; the kernel tests pin the two functions equal
// over every one of the 65536 bit patterns.
func Float16To64(h uint16) float64 {
	const (
		expMask  = 0x1f
		mantMask = 0x3ff
	)
	sign := float64(1)
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h >> 10 & expMask)
	mant := int(h & mantMask)
	switch exp {
	case 0: // zero or subnormal: mant · 2^-24
		return sign * float64(mant) * 0x1p-24
	case expMask:
		if mant != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	default:
		// Normal: (mant/1024 + 1) · 2^(exp-15) = (mant+1024) · 2^(exp-25),
		// where 2^(exp-25) is exact as a float64 bit pattern.
		return sign * float64(mant+0x400) * math.Float64frombits(uint64(exp-25+1023)<<52)
	}
}
