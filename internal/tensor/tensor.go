// Package tensor implements dense, row-major float64 tensors with the
// operations needed to train convolutional neural networks: elementwise
// arithmetic, BLAS-style vector ops, parallel matrix multiplication, im2col
// convolution, and max pooling.
//
// It is the substrate standing in for PyTorch's tensor library in this
// reproduction of APPFL. Tensors are contiguous; Reshape returns a view that
// shares storage, everything else either operates in place or allocates.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major array of float64 values.
type Tensor struct {
	shape []int
	data  []float64
}

// New allocates a zero-filled tensor with the given shape. A tensor with no
// dimensions is a scalar holding one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The tensor takes
// ownership of data; it must have exactly the product of the dimensions.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (=%d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Shape returns the dimensions. The returned slice must not be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutations are visible
// to the tensor and to any views sharing its storage.
func (t *Tensor) Data() []float64 { return t.data }

// offset converts a multi-index to a flat offset.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + v
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.data))
	copy(d, t.data)
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return &Tensor{shape: s, data: d}
}

// Reshape returns a view with a new shape sharing the same storage. The
// element count must be preserved.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

// checkSameShape panics unless t and u share a shape.
func (t *Tensor) checkSameShape(u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}

// Add returns t + u elementwise.
func (t *Tensor) Add(u *Tensor) *Tensor {
	t.checkSameShape(u, "Add")
	out := t.Clone()
	for i, v := range u.data {
		out.data[i] += v
	}
	return out
}

// AddInPlace sets t += u elementwise and returns t.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	t.checkSameShape(u, "AddInPlace")
	for i, v := range u.data {
		t.data[i] += v
	}
	return t
}

// Sub returns t - u elementwise.
func (t *Tensor) Sub(u *Tensor) *Tensor {
	t.checkSameShape(u, "Sub")
	out := t.Clone()
	for i, v := range u.data {
		out.data[i] -= v
	}
	return out
}

// SubInPlace sets t -= u elementwise and returns t.
func (t *Tensor) SubInPlace(u *Tensor) *Tensor {
	t.checkSameShape(u, "SubInPlace")
	for i, v := range u.data {
		t.data[i] -= v
	}
	return t
}

// Mul returns the elementwise (Hadamard) product t ⊙ u.
func (t *Tensor) Mul(u *Tensor) *Tensor {
	t.checkSameShape(u, "Mul")
	out := t.Clone()
	for i, v := range u.data {
		out.data[i] *= v
	}
	return out
}

// Scale returns alpha * t.
func (t *Tensor) Scale(alpha float64) *Tensor {
	out := t.Clone()
	for i := range out.data {
		out.data[i] *= alpha
	}
	return out
}

// ScaleInPlace sets t *= alpha and returns t.
func (t *Tensor) ScaleInPlace(alpha float64) *Tensor {
	for i := range t.data {
		t.data[i] *= alpha
	}
	return t
}

// AXPY sets t += alpha * u (the BLAS axpy primitive) and returns t.
func (t *Tensor) AXPY(alpha float64, u *Tensor) *Tensor {
	t.checkSameShape(u, "AXPY")
	for i, v := range u.data {
		t.data[i] += alpha * v
	}
	return t
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if len(t.data) != len(u.data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(t.data), len(u.data)))
	}
	s := 0.0
	for i, v := range t.data {
		s += v * u.data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element (0 for an empty tensor).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// ArgMax returns the flat index of the maximum element. Ties resolve to the
// first occurrence. It panics on an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Row returns a view of row i of a rank-2 tensor as a rank-1 tensor sharing
// storage.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a rank-2 tensor")
	}
	cols := t.shape[1]
	return &Tensor{shape: []int{cols}, data: t.data[i*cols : (i+1)*cols]}
}

// Slice returns a view of the i-th sub-tensor along the first axis, sharing
// storage. For a [N, C, H, W] batch it yields sample i as [C, H, W].
func (t *Tensor) Slice(i int) *Tensor {
	if len(t.shape) < 1 {
		panic("tensor: Slice requires rank >= 1")
	}
	if i < 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: Slice index %d out of bounds for first dim %d", i, t.shape[0]))
	}
	sub := len(t.data) / t.shape[0]
	s := make([]int, len(t.shape)-1)
	copy(s, t.shape[1:])
	return &Tensor{shape: s, data: t.data[i*sub : (i+1)*sub]}
}

// EqualWithin reports whether t and u match elementwise within tol.
func (t *Tensor) EqualWithin(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(v-u.data[i]) > tol {
			return false
		}
	}
	return true
}
