package tensor

import (
	"fmt"
	"sync"
)

// ---------------------------------------------------------------------------
// Pooled scratch buffers.
//
// The federated hot path moves O(dim) vectors every round — encode/decode
// scratch, downlink code buffers, densified payloads. These free-list
// pools let steady-state rounds recycle those buffers instead of
// re-allocating them per message. Contents of a Get buffer are undefined;
// callers must fully overwrite the range they use. Putting a buffer while
// any reference to it is still live is a correctness bug on the caller.

var (
	f64Pool  sync.Pool // of *[]float64
	bytePool sync.Pool // of *[]byte
)

// GetF64 returns a scratch []float64 of length n with undefined contents.
func GetF64(n int) []float64 {
	if v := f64Pool.Get(); v != nil {
		if s := *v.(*[]float64); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

// PutF64 recycles a buffer obtained from GetF64 (or anywhere else — the
// pool only cares about capacity). The caller must not use s afterwards.
func PutF64(s []float64) {
	if cap(s) == 0 {
		return
	}
	f64Pool.Put(&s)
}

// GetBytes returns a scratch []byte of length n with undefined contents.
func GetBytes(n int) []byte {
	if v := bytePool.Get(); v != nil {
		if s := *v.(*[]byte); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]byte, n)
}

// PutBytes recycles a buffer obtained from GetBytes.
func PutBytes(s []byte) {
	if cap(s) == 0 {
		return
	}
	bytePool.Put(&s)
}

// MaxPool2DForward applies max pooling with a square kernel and stride to a
// batch x [N, C, H, W]. It returns the pooled output [N, C, OH, OW] and the
// flat argmax index (into each sample's data) for every output element, which
// the backward pass uses to route gradients.
func MaxPool2DForward(x *Tensor, kernel, stride int) (y *Tensor, argmax []int) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2DForward requires [N,C,H,W], got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := ConvOut(h, kernel, stride, 0)
	ow := ConvOut(w, kernel, stride, 0)
	if oh <= 0 || ow <= 0 {
		panic("tensor: MaxPool2DForward output is empty")
	}
	y = New(n, c, oh, ow)
	argmax = make([]int, n*c*oh*ow)
	sampleLen := c * h * w
	parallelFor(n, func(i int) {
		src := x.data[i*sampleLen : (i+1)*sampleLen]
		outBase := i * c * oh * ow
		for ci := 0; ci < c; ci++ {
			chanBase := ci * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy0, ix0 := oy*stride, ox*stride
					bestIdx := chanBase + iy0*w + ix0
					best := src[bestIdx]
					for ky := 0; ky < kernel; ky++ {
						rowBase := chanBase + (iy0+ky)*w
						for kx := 0; kx < kernel; kx++ {
							idx := rowBase + ix0 + kx
							if src[idx] > best {
								best, bestIdx = src[idx], idx
							}
						}
					}
					o := outBase + (ci*oh+oy)*ow + ox
					y.data[o] = best
					argmax[o] = bestIdx
				}
			}
		}
	})
	return y, argmax
}

// MaxPool2DBackward routes the upstream gradient dy [N, C, OH, OW] back to
// the positions recorded in argmax, producing dx with the input shape.
func MaxPool2DBackward(dy *Tensor, argmax []int, inShape []int) *Tensor {
	if len(inShape) != 4 {
		panic("tensor: MaxPool2DBackward requires a rank-4 input shape")
	}
	if len(argmax) != dy.Size() {
		panic(fmt.Sprintf("tensor: MaxPool2DBackward argmax length %d does not match dy size %d", len(argmax), dy.Size()))
	}
	dx := New(inShape...)
	n := inShape[0]
	sampleLen := inShape[1] * inShape[2] * inShape[3]
	outSample := dy.Size() / n
	for i := 0; i < n; i++ {
		dst := dx.data[i*sampleLen : (i+1)*sampleLen]
		for j := 0; j < outSample; j++ {
			o := i*outSample + j
			dst[argmax[o]] += dy.data[o]
		}
	}
	return dx
}
