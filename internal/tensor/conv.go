package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// ConvOut returns the output spatial size of a convolution or pooling with
// the given input size, kernel, stride, and symmetric padding.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col unrolls one [C, H, W] image into a [C*KH*KW, OH*OW] matrix where
// each column holds the receptive field of one output position. Zero padding
// is applied implicitly.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col requires [C,H,W] input, got %v", x.shape))
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	out := New(c*kh*kw, oh*ow)
	ncols := oh * ow
	for ci := 0; ci < c; ci++ {
		chanBase := ci * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				rowBase := ((ci*kh+ki)*kw + kj) * ncols
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ki - pad
					if iy < 0 || iy >= h {
						continue // zero padding; output already zero
					}
					srcRow := chanBase + iy*w
					dstRow := rowBase + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kj - pad
						if ix < 0 || ix >= w {
							continue
						}
						out.data[dstRow+ox] = x.data[srcRow+ix]
					}
				}
			}
		}
	}
	return out
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) a
// [C*KH*KW, OH*OW] matrix back into a [C, H, W] image. Overlapping
// receptive fields sum, which is exactly the gradient of Im2Col.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	ncols := oh * ow
	if cols.Rank() != 2 || cols.shape[0] != c*kh*kw || cols.shape[1] != ncols {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with C=%d H=%d W=%d K=%dx%d", cols.shape, c, h, w, kh, kw))
	}
	out := New(c, h, w)
	for ci := 0; ci < c; ci++ {
		chanBase := ci * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				rowBase := ((ci*kh+ki)*kw + kj) * ncols
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ki - pad
					if iy < 0 || iy >= h {
						continue
					}
					dstRow := chanBase + iy*w
					srcRow := rowBase + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kj - pad
						if ix < 0 || ix >= w {
							continue
						}
						out.data[dstRow+ix] += cols.data[srcRow+ox]
					}
				}
			}
		}
	}
	return out
}

// Conv2DForward computes a batched 2-D convolution.
//
//	x: [N, Cin, H, W], weight: [Cout, Cin, KH, KW], bias: [Cout] (may be nil)
//
// Returns y [N, Cout, OH, OW] and the per-sample im2col matrices, which the
// backward pass reuses. Samples are processed in parallel.
func Conv2DForward(x, weight, bias *Tensor, stride, pad int) (y *Tensor, cols []*Tensor) {
	if x.Rank() != 4 || weight.Rank() != 4 {
		panic("tensor: Conv2DForward requires x [N,C,H,W] and weight [Cout,Cin,KH,KW]")
	}
	n, cin, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	cout, cinW, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if cin != cinW {
		panic(fmt.Sprintf("tensor: Conv2DForward channel mismatch input %d weight %d", cin, cinW))
	}
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	y = New(n, cout, oh, ow)
	cols = make([]*Tensor, n)
	wMat := weight.Reshape(cout, cin*kh*kw)
	parallelFor(n, func(i int) {
		col := Im2Col(x.Slice(i), kh, kw, stride, pad)
		cols[i] = col
		prod := MatMul(wMat, col) // [Cout, OH*OW]
		dst := y.Slice(i).data
		copy(dst, prod.data)
		if bias != nil {
			plane := oh * ow
			for co := 0; co < cout; co++ {
				b := bias.data[co]
				row := dst[co*plane : (co+1)*plane]
				for j := range row {
					row[j] += b
				}
			}
		}
	})
	return y, cols
}

// Conv2DBackward computes gradients for the batched convolution given the
// upstream gradient dy [N, Cout, OH, OW] and the im2col matrices from the
// forward pass. It returns dx [N, Cin, H, W], dWeight, and dBias; dBias is
// nil when bias was nil.
func Conv2DBackward(dy, x, weight *Tensor, cols []*Tensor, hasBias bool, stride, pad int) (dx, dWeight, dBias *Tensor) {
	n, cin, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	cout, kh, kw := weight.shape[0], weight.shape[2], weight.shape[3]
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	plane := oh * ow

	dx = New(n, cin, h, w)
	dWeight = New(weight.shape...)
	if hasBias {
		dBias = New(cout)
	}
	wMat := weight.Reshape(cout, cin*kh*kw)

	// Per-sample weight-gradient partials are accumulated into per-worker
	// buffers and reduced at the end, so samples can run in parallel without
	// contending on dWeight.
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	partialW := make([]*Tensor, workers)
	partialB := make([]*Tensor, workers)
	for i := range partialW {
		partialW[i] = New(weight.shape...)
		if hasBias {
			partialB[i] = New(cout)
		}
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for wk := 0; wk < workers; wk++ {
		lo, hi := wk*chunk, (wk+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			pw := partialW[wk].Reshape(cout, cin*kh*kw)
			for i := lo; i < hi; i++ {
				dyMat := dy.Slice(i).Reshape(cout, plane)
				// dW += dy · colsᵀ
				pw.AddInPlace(MatMulTransB(dyMat, cols[i]))
				if hasBias {
					for co := 0; co < cout; co++ {
						s := 0.0
						row := dyMat.data[co*plane : (co+1)*plane]
						for _, v := range row {
							s += v
						}
						partialB[wk].data[co] += s
					}
				}
				// dcols = wᵀ · dy, then scatter back to image space.
				dcols := MatMulTransA(wMat, dyMat)
				dxi := Col2Im(dcols, cin, h, w, kh, kw, stride, pad)
				copy(dx.Slice(i).data, dxi.data)
			}
		}(wk, lo, hi)
	}
	wg.Wait()
	for i := range partialW {
		dWeight.AddInPlace(partialW[i])
		if hasBias {
			dBias.AddInPlace(partialB[i])
		}
	}
	return dx, dWeight, dBias
}

// parallelFor runs f(i) for i in [0,n) across GOMAXPROCS goroutines.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}
