package tensor_test

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// kernelVec builds a deterministic test vector with values spanning signs
// and magnitudes, sized to cross several kernel blocks plus a ragged tail.
func kernelVec(n int, seed uint64) []float64 {
	r := rng.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = (r.Float64() - 0.5) * 4
	}
	return v
}

const kdim = 3*tensor.KernelBlock + 17

// TestFloat16To64MatchesWire pins the kernel package's duplicated half
// decoder bit-equal to wire.Float16ToFloat64 over every one of the 65536
// bit patterns — the invariant that makes the fused f16 fold exactly the
// two-pass densify+fold.
func TestFloat16To64MatchesWire(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		got := tensor.Float16To64(uint16(h))
		want := wire.Float16ToFloat64(uint16(h))
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("bits %#04x: got %v, want NaN", h, got)
			}
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("bits %#04x: got %v (%#x), want %v (%#x)",
				h, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// seqFoldK is the pre-kernel reference: a zero sweep then one full
// accumulator sweep per source.
func seqFoldK(dst []float64, srcs [][]float64, weights []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for k, src := range srcs {
		w := weights[k]
		for i, v := range src {
			dst[i] += w * v
		}
	}
}

func TestFoldKBitIdenticalToSequential(t *testing.T) {
	for _, k := range []int{1, 2, 8, 32} {
		srcs := make([][]float64, k)
		weights := make([]float64, k)
		for j := range srcs {
			srcs[j] = kernelVec(kdim, uint64(100+j))
			weights[j] = 1 / float64(k+j)
		}
		want := make([]float64, kdim)
		seqFoldK(want, srcs, weights)
		got := make([]float64, kdim)
		tensor.FoldK(got, 0, kdim, srcs, weights)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("K=%d: element %d differs: %v vs %v", k, i, got[i], want[i])
			}
		}
		// Split bounds must compose to the same bytes as one full-range call.
		split := make([]float64, kdim)
		mid := kdim/2 + 31
		tensor.FoldK(split, 0, mid, srcs, weights)
		tensor.FoldK(split, mid, kdim, srcs, weights)
		for i := range want {
			if math.Float64bits(split[i]) != math.Float64bits(want[i]) {
				t.Fatalf("K=%d: split fold differs at %d", k, i)
			}
		}
	}
}

func TestFoldKScaledBitIdenticalToSequential(t *testing.T) {
	srcs := make([][]float64, 8)
	alphas := make([]float64, 8)
	for j := range srcs {
		srcs[j] = kernelVec(kdim, uint64(200+j))
		alphas[j] = 0.6 * math.Pow(0.8, float64(j))
	}
	want := kernelVec(kdim, 7)
	got := append([]float64(nil), want...)
	for k, src := range srcs { // reference: K separate whole-vector folds
		a := alphas[k]
		for i, v := range src {
			want[i] = (1-a)*want[i] + a*v
		}
	}
	tensor.FoldKScaled(got, 0, kdim, srcs, alphas)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("element %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFoldKDualAndDualStepKBitIdentical(t *testing.T) {
	const k, rho, invP = 5, 2.5, 1.0 / 5
	zs := make([][]float64, k)
	ds := make([][]float64, k)
	dsRef := make([][]float64, k)
	for j := range zs {
		zs[j] = kernelVec(kdim, uint64(300+j))
		ds[j] = kernelVec(kdim, uint64(400+j))
		dsRef[j] = append([]float64(nil), ds[j]...)
	}
	w := kernelVec(kdim, 9)
	wRef := append([]float64(nil), w...)

	// Reference: the pre-kernel serial loops.
	for j := range dsRef {
		for i := range dsRef[j] {
			dsRef[j][i] += rho * (wRef[i] - zs[j][i])
		}
	}
	for i := range wRef {
		wRef[i] = 0
	}
	for j := range zs {
		for i := range wRef {
			wRef[i] += invP * (zs[j][i] - dsRef[j][i]/rho)
		}
	}

	tensor.DualStepK(ds, w, 0, kdim, zs, rho)
	tensor.FoldKDual(w, 0, kdim, zs, ds, invP, rho)
	for j := range ds {
		for i := range ds[j] {
			if math.Float64bits(ds[j][i]) != math.Float64bits(dsRef[j][i]) {
				t.Fatalf("dual %d element %d differs", j, i)
			}
		}
	}
	for i := range w {
		if math.Float64bits(w[i]) != math.Float64bits(wRef[i]) {
			t.Fatalf("w element %d differs: %v vs %v", i, w[i], wRef[i])
		}
	}
}

// encodeF16 packs v as little-endian binary16.
func encodeF16(v []float64) []byte {
	c := make([]byte, 2*len(v))
	for i, x := range v {
		h := wire.Float16FromFloat64(x)
		c[2*i] = byte(h)
		c[2*i+1] = byte(h >> 8)
	}
	return c
}

// fusedSrcs builds one source of each kind, all decoding near the same
// underlying vectors.
func fusedSrcs(t *testing.T) []tensor.FoldSrc {
	t.Helper()
	r := rng.New(55)
	q8 := make([]byte, kdim)
	q16 := make([]byte, 2*kdim)
	for i := 0; i < kdim; i++ {
		q8[i] = byte(r.Uint64())
		c := uint16(r.Uint64())
		q16[2*i] = byte(c)
		q16[2*i+1] = byte(c >> 8)
	}
	return []tensor.FoldSrc{
		{Kind: tensor.SrcDense, Dense: kernelVec(kdim, 500), W: 0.25},
		{Kind: tensor.SrcF16, Codes: encodeF16(kernelVec(kdim, 501)), W: 0.33},
		{Kind: tensor.SrcQuant8, Codes: q8, Scale: 0.013, Offset: -1.6, W: 0.2},
		{Kind: tensor.SrcQuant16, Codes: q16, Scale: 6.3e-5, Offset: -2.05, W: 0.22},
	}
}

// TestFoldKSrcMatchesTwoPass pins the fused kernels bit-identical to the
// two-pass path: densify every source via At, then run the dense kernels.
func TestFoldKSrcMatchesTwoPass(t *testing.T) {
	srcs := fusedSrcs(t)
	dense := make([][]float64, len(srcs))
	weights := make([]float64, len(srcs))
	for k := range srcs {
		dense[k] = make([]float64, kdim)
		for i := range dense[k] {
			dense[k][i] = srcs[k].At(i)
		}
		weights[k] = srcs[k].W
	}

	want := make([]float64, kdim)
	tensor.FoldK(want, 0, kdim, dense, weights)
	got := make([]float64, kdim)
	tensor.FoldKSrc(got, 0, kdim, srcs)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("FoldKSrc element %d differs: %v vs %v", i, got[i], want[i])
		}
	}

	wantS := kernelVec(kdim, 8)
	gotS := append([]float64(nil), wantS...)
	tensor.FoldKScaled(wantS, 0, kdim, dense, weights)
	tensor.FoldKScaledSrc(gotS, 0, kdim, srcs)
	for i := range wantS {
		if math.Float64bits(gotS[i]) != math.Float64bits(wantS[i]) {
			t.Fatalf("FoldKScaledSrc element %d differs: %v vs %v", i, gotS[i], wantS[i])
		}
	}
}

// TestFoldKSrc32TracksF64 bounds the single-precision kernels against the
// double-precision result: same sources, relative L2 error within a few
// float32 ulps.
func TestFoldKSrc32TracksF64(t *testing.T) {
	srcs := fusedSrcs(t)
	f64 := make([]float64, kdim)
	tensor.FoldKSrc(f64, 0, kdim, srcs)
	f32 := make([]float32, kdim)
	tensor.FoldKSrc32(f32, 0, kdim, srcs)
	var num, den float64
	for i := range f64 {
		d := float64(f32[i]) - f64[i]
		num += d * d
		den += f64[i] * f64[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-6 {
		t.Fatalf("f32 fold relative error %v > 1e-6", rel)
	}
}

func TestWidenNarrowRoundTrip(t *testing.T) {
	v32 := make([]float32, 100)
	r := rng.New(77)
	for i := range v32 {
		v32[i] = float32(r.Float64() - 0.5)
	}
	v64 := tensor.Widen(nil, v32)
	back := tensor.Narrow(nil, v64)
	for i := range v32 {
		if back[i] != v32[i] {
			t.Fatalf("element %d: %v -> %v -> %v", i, v32[i], v64[i], back[i])
		}
	}
	// Capacity reuse must not reallocate.
	d := make([]float64, len(v32))
	if got := tensor.Widen(d, v32); &got[0] != &d[0] {
		t.Fatal("Widen reallocated despite sufficient capacity")
	}
}

// TestKernelsZeroAllocs pins the steady-state allocation count of every
// kernel at zero — they are the aggregation hot path.
func TestKernelsZeroAllocs(t *testing.T) {
	srcs := fusedSrcs(t)
	dense := [][]float64{kernelVec(kdim, 600), kernelVec(kdim, 601)}
	weights := []float64{0.5, 0.5}
	ds := [][]float64{kernelVec(kdim, 602), kernelVec(kdim, 603)}
	dst := make([]float64, kdim)
	dst32 := make([]float32, kdim)
	w64 := make([]float64, kdim)
	w32 := make([]float32, kdim)

	cases := map[string]func(){
		"FoldK":            func() { tensor.FoldK(dst, 0, kdim, dense, weights) },
		"FoldKScaled":      func() { tensor.FoldKScaled(dst, 0, kdim, dense, weights) },
		"FoldKDual":        func() { tensor.FoldKDual(dst, 0, kdim, dense, ds, 0.5, 2) },
		"DualStepK":        func() { tensor.DualStepK(ds, dst, 0, kdim, dense, 2) },
		"FoldKSrc":         func() { tensor.FoldKSrc(dst, 0, kdim, srcs) },
		"FoldKScaledSrc":   func() { tensor.FoldKScaledSrc(dst, 0, kdim, srcs) },
		"FoldKSrc32":       func() { tensor.FoldKSrc32(dst32, 0, kdim, srcs) },
		"FoldKScaledSrc32": func() { tensor.FoldKScaledSrc32(dst32, 0, kdim, srcs) },
		"Widen":            func() { tensor.Widen(w64, w32) },
		"Narrow":           func() { tensor.Narrow(w32, w64) },
	}
	for name, f := range cases {
		if allocs := testing.AllocsPerRun(10, f); allocs != 0 {
			t.Errorf("%s allocates %v per run, want 0", name, allocs)
		}
	}
}
