package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamMoments(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean %v, want 5", s.Mean())
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
}

func TestStreamEmptyAndSingle(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Var() != 0 {
		t.Fatal("empty stream moments must be 0")
	}
	s.Add(3)
	if s.Var() != 0 || s.Std() != 0 {
		t.Fatal("single observation has zero variance")
	}
}

// Property: Welford mean matches the naive mean.
func TestStreamMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		var s Stream
		sum := 0.0
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
				continue
			}
			s.Add(x)
			sum += x
			n++
		}
		if n == 0 {
			return true
		}
		return math.Abs(s.Mean()-sum/float64(n)) <= 1e-6*(1+math.Abs(sum/float64(n)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 || Quantile(xs, 0.5) != 3 {
		t.Fatal("basic quantiles wrong")
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q1 = %v, want 2", got)
	}
	// Interpolation between points.
	if got := Quantile([]float64{0, 10}, 0.25); got != 2.5 {
		t.Fatalf("interpolated quantile %v, want 2.5", got)
	}
	// Input must not be mutated (sorted copy).
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileValidation(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBoxStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	b := BoxStats(xs)
	if b.Min != 1 || b.Max != 100 || b.Median != 3 {
		t.Fatalf("box %+v", b)
	}
	if b.Spread() != 100 {
		t.Fatalf("spread %v", b.Spread())
	}
}

func TestBoxSpreadWithZeroMin(t *testing.T) {
	b := Box{Min: 0, Max: 5}
	if !math.IsInf(b.Spread(), 1) {
		t.Fatal("zero-min spread should be +Inf")
	}
}

func TestSpeedup(t *testing.T) {
	s := Speedup([]float64{10, 5, 2.5})
	if s[0] != 1 || s[1] != 2 || s[2] != 4 {
		t.Fatalf("speedup %v", s)
	}
}

func TestSpeedupPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Speedup([]float64{1, 0})
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableRowValidation(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cell count mismatch")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("csv header wrong: %s", csv)
	}
}
