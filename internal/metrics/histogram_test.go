package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestHistogramValidation(t *testing.T) {
	for _, c := range []struct {
		lo, hi  float64
		buckets int
	}{
		{0, 1, 10}, {-1, 1, 10}, {1, 1, 10}, {2, 1, 10}, {1e-3, 10, 0},
	} {
		if _, err := NewHistogram(c.lo, c.hi, c.buckets); err == nil {
			t.Errorf("NewHistogram(%v, %v, %d) accepted", c.lo, c.hi, c.buckets)
		}
	}
	if _, err := NewHistogram(1e-4, 100, 256); err != nil {
		t.Fatalf("valid histogram rejected: %v", err)
	}
}

func TestHistogramEmptyAndBounds(t *testing.T) {
	h, _ := NewHistogram(1e-3, 10, 64)
	if h.N() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram reports observations")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty histogram did not panic")
		}
	}()
	h.Quantile(0.5)
}

// TestHistogramMatchesExactQuantile: against lognormal latencies (the
// simnet's jitter model), the bucketed quantiles must track the exact
// sorted-copy Quantile within one bucket's relative width.
func TestHistogramMatchesExactQuantile(t *testing.T) {
	const n = 50_000
	r := rng.New(11)
	h, err := NewHistogram(1e-5, 100, 512)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, n)
	for i := range xs {
		x := 0.01 * r.LogNormal(0, 0.5)
		xs[i] = x
		h.Add(x)
	}
	if h.N() != n {
		t.Fatalf("N = %d, want %d", h.N(), n)
	}
	// One bucket spans a factor of (100/1e-5)^(1/512) ≈ 1.032 — allow a
	// hair over one bucket of relative error.
	const tol = 0.04
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := Quantile(xs, q)
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > tol {
			t.Errorf("q=%v: histogram %v, exact %v (rel err %.3f > %v)", q, got, exact, rel, tol)
		}
	}
	if h.Quantile(0) < h.Min() || h.Quantile(1) > h.Max() {
		t.Error("quantile endpoints escape the observed range")
	}
	p50, p95, p99 := h.Summary()
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("summary not monotone: %v %v %v", p50, p95, p99)
	}
}

// TestHistogramClamping: out-of-range and degenerate inputs land in the
// boundary buckets and constant data answers exactly.
func TestHistogramClamping(t *testing.T) {
	h, _ := NewHistogram(1, 100, 8)
	for _, x := range []float64{0.001, -5, 1e6, math.Inf(1), math.NaN()} {
		h.Add(x) // must not panic
	}
	if h.N() != 5 {
		t.Fatalf("N = %d, want 5", h.N())
	}

	c, _ := NewHistogram(1e-3, 10, 64)
	for i := 0; i < 1000; i++ {
		c.Add(0.25)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := c.Quantile(q); got != 0.25 {
			t.Errorf("constant data: q=%v gave %v, want 0.25", q, got)
		}
	}
}

// TestHistogramNaNFirstObservation: a NaN first observation used to set
// min = max = NaN permanently (every later `x < min` / `x > max`
// comparison is false against NaN), so Quantile's observed-range clamp
// returned NaN for every quantile despite the clamping promise. NaN must
// be counted but excluded from the min/max tracking.
func TestHistogramNaNFirstObservation(t *testing.T) {
	h, _ := NewHistogram(1e-3, 10, 64)
	h.Add(math.NaN())
	for i := 0; i < 100; i++ {
		h.Add(0.25)
	}
	h.Add(math.NaN())
	if h.N() != 102 {
		t.Fatalf("N = %d, want 102 (NaN still counts)", h.N())
	}
	if h.Min() != 0.25 || h.Max() != 0.25 {
		t.Fatalf("min/max = %v/%v, want 0.25/0.25 (NaN must not poison the range)", h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = NaN after a NaN first observation", q)
		}
	}

	// All-NaN input: counted, no range, quantiles finite.
	n, _ := NewHistogram(1e-3, 10, 8)
	n.Add(math.NaN())
	n.Add(math.NaN())
	if n.N() != 2 {
		t.Fatalf("N = %d, want 2", n.N())
	}
	if math.IsNaN(n.Min()) || math.IsNaN(n.Max()) {
		t.Fatal("all-NaN input produced a NaN min/max")
	}
	if got := n.Quantile(0.5); math.IsNaN(got) {
		t.Fatalf("Quantile(0.5) = NaN on all-NaN input")
	}
}
