// Package metrics provides the measurement utilities used by the benchmark
// harness: streaming moments, quantiles and box-plot statistics (Fig. 4b),
// speedup tables (Fig. 3a), and plain-text/CSV rendering of result tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stream accumulates count, mean, and variance online (Welford).
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the observation count.
func (s *Stream) N() int { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Stream) Max() float64 { return s.max }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted copy. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("metrics: quantile of empty data")
	}
	if q < 0 || q > 1 {
		panic("metrics: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Box holds five-number box-plot statistics, the format of Fig. 4b.
type Box struct {
	Min, Q1, Median, Q3, Max float64
}

// BoxStats computes the five-number summary of xs.
func BoxStats(xs []float64) Box {
	return Box{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}
}

// Spread returns Max/Min, the round-to-round variability factor the paper
// quotes (≈30× for gRPC).
func (b Box) Spread() float64 {
	if b.Min <= 0 {
		return math.Inf(1)
	}
	return b.Max / b.Min
}

// Speedup converts a series of times into speedups relative to the first
// entry: out[i] = times[0]/times[i].
func Speedup(times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t <= 0 {
			panic("metrics: non-positive time in speedup")
		}
		out[i] = times[0] / t
	}
	return out
}

// Table is a simple column-oriented result table rendered as aligned text
// or CSV; every experiment driver reports through it.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it panics if the cell count mismatches the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("metrics: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: each value is rendered with %v
// for strings and %.4g for floats.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
