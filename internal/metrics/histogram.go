package metrics

import (
	"fmt"
	"math"
)

// Histogram is a fixed-size log-bucketed latency histogram: constant
// memory and O(1) Add no matter how many observations stream through it,
// unlike Quantile, which sorts a retained copy of the data. The scale
// harness records hundreds of thousands of simulated round latencies per
// probe; retaining them all to sort would dwarf the state under test.
//
// Buckets partition [Lo, Hi) geometrically — equal width in log space,
// the natural resolution for latencies, where tails stretch over orders
// of magnitude. Observations below Lo clamp into the first bucket and
// observations at or above Hi into the overflow bucket, so no sample is
// ever dropped. Quantile answers are exact to within one bucket's width
// (a few percent relative error at typical sizes), refined by linear
// interpolation inside the covering bucket and clamped to the observed
// min/max so degenerate distributions answer exactly.
type Histogram struct {
	lo, hi  float64
	logLo   float64
	invStep float64 // buckets per unit of log-space
	counts  []uint64
	n       uint64
	tracked uint64 // non-NaN observations (the ones min/max cover)
	min     float64
	max     float64
}

// NewHistogram builds a histogram over [lo, hi) with the given number of
// geometric buckets (plus an implicit overflow bucket for x >= hi).
// Bounds must be positive with lo < hi; buckets must be >= 1.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if !(lo > 0) || !(hi > lo) {
		return nil, fmt.Errorf("metrics: histogram needs 0 < lo < hi, got [%v, %v)", lo, hi)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("metrics: histogram needs >= 1 bucket, got %d", buckets)
	}
	return &Histogram{
		lo:      lo,
		hi:      hi,
		logLo:   math.Log(lo),
		invStep: float64(buckets) / (math.Log(hi) - math.Log(lo)),
		counts:  make([]uint64, buckets+1), // +1: overflow bucket
	}, nil
}

// Add records one observation. Non-finite or non-positive values clamp
// into the boundary buckets rather than corrupting the counts, and NaN
// observations are excluded from the min/max tracking: a NaN is counted
// (first bucket, like any non-positive value) but never becomes the
// observed min or max — a NaN min would defeat every later `x < min`
// comparison and poison Quantile's observed-range clamp permanently.
func (h *Histogram) Add(x float64) {
	h.n++
	h.counts[h.bucket(x)]++
	if math.IsNaN(x) {
		return
	}
	h.tracked++
	if h.tracked == 1 {
		h.min, h.max = x, x
		return
	}
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
}

// bucket maps an observation to its bucket index.
func (h *Histogram) bucket(x float64) int {
	if !(x > h.lo) { // also catches NaN
		return 0
	}
	if x >= h.hi {
		return len(h.counts) - 1
	}
	b := int((math.Log(x) - h.logLo) * h.invStep)
	// Guard the float boundary: log/multiply rounding can land exactly on
	// the bucket count for x just under hi.
	if b > len(h.counts)-2 {
		b = len(h.counts) - 2
	}
	return b
}

// N returns the observation count.
func (h *Histogram) N() uint64 { return h.n }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// boundsOf returns bucket b's value range [blo, bhi).
func (h *Histogram) boundsOf(b int) (blo, bhi float64) {
	if b == len(h.counts)-1 {
		return h.hi, h.max // overflow: cap at the observed max
	}
	step := 1 / h.invStep
	blo = math.Exp(h.logLo + float64(b)*step)
	bhi = math.Exp(h.logLo + float64(b+1)*step)
	return blo, bhi
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) estimated by linear
// interpolation within the covering bucket, clamped to the observed
// min/max. It panics on an empty histogram or q outside [0,1], matching
// the exact Quantile's contract.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		panic("metrics: quantile of empty histogram")
	}
	if q < 0 || q > 1 {
		panic("metrics: quantile out of [0,1]")
	}
	// Rank in [0, n-1], the convention of the exact Quantile.
	rank := q * float64(h.n-1)
	cum := 0.0
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		// Observations in bucket b occupy ranks [cum, cum+c).
		if rank < cum+float64(c) {
			blo, bhi := h.boundsOf(b)
			frac := (rank - cum + 0.5) / float64(c)
			v := blo + (bhi-blo)*frac
			// Clamp to the observed range: a single-bucket or boundary
			// distribution must not answer outside what was seen.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += float64(c)
	}
	return h.max
}

// Summary returns the (p50, p95, p99) latency triple the scale harness
// publishes.
func (h *Histogram) Summary() (p50, p95, p99 float64) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}
