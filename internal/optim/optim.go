// Package optim provides the local optimizers used by the federated
// algorithms: stochastic gradient descent with and without momentum. FedAvg
// in the paper uses SGD with momentum (Qian, 1999) for its client updates;
// the IADMM algorithms use their own closed-form proximal step and do not go
// through this package.
package optim

import (
	"repro/internal/nn"
)

// Optimizer updates a model's parameters from its accumulated gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// model parameters.
	Step()
	// Reset clears any internal state (e.g. momentum buffers).
	Reset()
}

// SGD implements stochastic gradient descent with optional momentum and
// Nesterov acceleration over a fixed model.
type SGD struct {
	LR       float64
	Momentum float64
	Nesterov bool

	params []*nn.Parameter
	veloc  [][]float64
}

// NewSGD constructs an SGD optimizer bound to m's parameters.
func NewSGD(m nn.Module, lr, momentum float64, nesterov bool) *SGD {
	params := m.Params()
	v := make([][]float64, len(params))
	for i, p := range params {
		v[i] = make([]float64, p.Value.Size())
	}
	return &SGD{LR: lr, Momentum: momentum, Nesterov: nesterov, params: params, veloc: v}
}

// Step applies one SGD update: v ← μv + g; p ← p − lr·(v or g+μv).
func (s *SGD) Step() {
	for i, p := range s.params {
		g := p.Grad.Data()
		w := p.Value.Data()
		if s.Momentum == 0 {
			for j := range w {
				w[j] -= s.LR * g[j]
			}
			continue
		}
		v := s.veloc[i]
		for j := range w {
			v[j] = s.Momentum*v[j] + g[j]
			if s.Nesterov {
				w[j] -= s.LR * (g[j] + s.Momentum*v[j])
			} else {
				w[j] -= s.LR * v[j]
			}
		}
	}
}

// Reset zeroes the momentum buffers.
func (s *SGD) Reset() {
	for _, v := range s.veloc {
		for j := range v {
			v[j] = 0
		}
	}
}
