package optim

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// quadModel is a 1-parameter model used to observe optimizer trajectories on
// the quadratic f(w) = 0.5 w².
type quadModel struct {
	p *nn.Parameter
}

func newQuad(w0 float64) *quadModel {
	return &quadModel{p: &nn.Parameter{
		Name:  "w",
		Value: tensor.FromSlice([]float64{w0}, 1),
		Grad:  tensor.New(1),
	}}
}

func (q *quadModel) Forward(x *tensor.Tensor) *tensor.Tensor  { return x }
func (q *quadModel) Backward(d *tensor.Tensor) *tensor.Tensor { return d }
func (q *quadModel) Params() []*nn.Parameter                  { return []*nn.Parameter{q.p} }

func (q *quadModel) setGrad() { q.p.Grad.Data()[0] = q.p.Value.Data()[0] }
func (q *quadModel) w() float64 {
	return q.p.Value.Data()[0]
}

func TestSGDNoMomentumExactStep(t *testing.T) {
	q := newQuad(1.0)
	opt := NewSGD(q, 0.1, 0, false)
	q.setGrad()
	opt.Step()
	// w ← 1 - 0.1*1 = 0.9
	if math.Abs(q.w()-0.9) > 1e-15 {
		t.Fatalf("w = %v, want 0.9", q.w())
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	q := newQuad(5.0)
	opt := NewSGD(q, 0.2, 0, false)
	for i := 0; i < 100; i++ {
		q.setGrad()
		opt.Step()
	}
	if math.Abs(q.w()) > 1e-6 {
		t.Fatalf("did not converge: w = %v", q.w())
	}
}

func TestSGDMomentumMatchesHandComputation(t *testing.T) {
	// v ← μv + g; w ← w − lr·v with μ=0.5, lr=0.1, constant g=1.
	q := newQuad(0)
	opt := NewSGD(q, 0.1, 0.5, false)
	w := 0.0
	v := 0.0
	for i := 0; i < 5; i++ {
		q.p.Grad.Data()[0] = 1
		opt.Step()
		v = 0.5*v + 1
		w -= 0.1 * v
		if math.Abs(q.w()-w) > 1e-15 {
			t.Fatalf("step %d: w = %v, want %v", i, q.w(), w)
		}
	}
}

func TestSGDNesterovDiffersFromHeavyBall(t *testing.T) {
	a, b := newQuad(1), newQuad(1)
	oa := NewSGD(a, 0.1, 0.9, false)
	ob := NewSGD(b, 0.1, 0.9, true)
	for i := 0; i < 3; i++ {
		a.setGrad()
		oa.Step()
		b.setGrad()
		ob.Step()
	}
	if a.w() == b.w() {
		t.Fatal("Nesterov and heavy-ball should differ after several steps")
	}
}

func TestSGDMomentumAcceleratesOnIllConditioned(t *testing.T) {
	// On f(w)=0.5w² with small lr, momentum should reach the optimum faster.
	plain, mom := newQuad(10), newQuad(10)
	po := NewSGD(plain, 0.05, 0, false)
	mo := NewSGD(mom, 0.05, 0.9, false)
	for i := 0; i < 50; i++ {
		plain.setGrad()
		po.Step()
		mom.setGrad()
		mo.Step()
	}
	if math.Abs(mom.w()) >= math.Abs(plain.w()) {
		t.Fatalf("momentum (|w|=%v) not faster than plain (|w|=%v)", math.Abs(mom.w()), math.Abs(plain.w()))
	}
}

func TestSGDReset(t *testing.T) {
	q := newQuad(0)
	opt := NewSGD(q, 0.1, 0.9, false)
	q.p.Grad.Data()[0] = 1
	opt.Step()
	opt.Reset()
	q.p.Value.Data()[0] = 0
	q.p.Grad.Data()[0] = 1
	opt.Step()
	// After reset, first step must equal a fresh optimizer's first step: −lr·g.
	if math.Abs(q.w()+0.1) > 1e-15 {
		t.Fatalf("post-reset step w = %v, want -0.1", q.w())
	}
}

func TestSGDTrainsRealModel(t *testing.T) {
	r := rng.New(1)
	m := nn.NewMLP(2, []int{8}, 2, r)
	opt := NewSGD(m, 0.3, 0.9, false)
	x := tensor.FromSlice([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels := []int{0, 1, 1, 0}
	var loss float64
	for i := 0; i < 300; i++ {
		nn.ZeroGrad(m)
		logits := m.Forward(x)
		var d *tensor.Tensor
		loss, d = nn.CrossEntropy(logits, labels)
		m.Backward(d)
		opt.Step()
	}
	if loss > 0.05 {
		t.Fatalf("SGD+momentum failed to fit XOR: loss %v", loss)
	}
}
