// Repository-level benchmarks: one per table and figure of the paper's
// evaluation (Section IV), plus ablations for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its artifact at reduced scale and reports
// headline quantities through b.ReportMetric so the paper-vs-measured
// comparison in EXPERIMENTS.md can be refreshed from one command. The full
// scale artifacts are produced by cmd/appfl-bench.
package appfl

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// BenchmarkTable1Matrix regenerates Table I (framework capabilities).
func BenchmarkTable1Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1Data()) != 5 {
			b.Fatal("table I row count")
		}
		_ = experiments.Table1().String()
	}
}

// fig2Bench runs one Fig. 2 panel (one dataset, all algorithms, the four
// privacy budgets) at reduced scale and reports the non-private and ε̄=3
// IIADMM accuracies.
func fig2Bench(b *testing.B, ds string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.Fig2(experiments.Fig2Options{
			Datasets:  []string{ds},
			Rounds:    3,
			TrainSize: 192,
			TestSize:  96,
			Clients:   4,
			Writers:   8,
			Seed:      uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Algorithm == core.AlgoIIADMM && math.IsInf(p.Epsilon, 1) {
				b.ReportMetric(p.FinalAcc, "acc-nonprivate")
			}
			if p.Algorithm == core.AlgoIIADMM && p.Epsilon == 3 {
				b.ReportMetric(p.FinalAcc, "acc-eps3")
			}
		}
	}
}

// BenchmarkFig2_MNIST regenerates the MNIST panel of Figure 2.
func BenchmarkFig2_MNIST(b *testing.B) { fig2Bench(b, "mnist") }

// BenchmarkFig2_CIFAR10 regenerates the CIFAR-10 panel of Figure 2.
func BenchmarkFig2_CIFAR10(b *testing.B) { fig2Bench(b, "cifar10") }

// BenchmarkFig2_FEMNIST regenerates the FEMNIST panel of Figure 2.
func BenchmarkFig2_FEMNIST(b *testing.B) { fig2Bench(b, "femnist") }

// BenchmarkFig2_CoronaHack regenerates the CoronaHack panel of Figure 2.
func BenchmarkFig2_CoronaHack(b *testing.B) { fig2Bench(b, "coronahack") }

// BenchmarkFig3_Scaling regenerates Figure 3 (strong scaling + gather
// fraction) and reports the paper's two headline numbers.
func BenchmarkFig3_Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig3(experiments.Fig3Options{})
		last := rows[len(rows)-1]
		b.ReportMetric(last.Speedup, "speedup-203ranks")
		b.ReportMetric(last.GatherPct, "gather%-203ranks")
		b.ReportMetric(rows[0].GatherSec/last.GatherSec, "gather-shrink")
	}
}

// BenchmarkFig4_CommProtocols regenerates Figure 4 (gRPC vs MPI) with the
// serialization rate measured from this repository's real codec.
func BenchmarkFig4_CommProtocols(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig4(experiments.Fig4Options{
			ModelDim:     100_000,
			MeasureCodec: true,
			Seed:         uint64(i) + 1,
		})
		b.ReportMetric(res.MeanRatio, "grpc/mpi-ratio")
		b.ReportMetric(res.MaxSpread, "round-spread")
	}
}

// BenchmarkHeteroDevices regenerates the Section IV-E device comparison.
func BenchmarkHeteroDevices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Hetero()
		b.ReportMetric(res.ImbalanceFactor, "a100/v100")
	}
}

// BenchmarkCommVolume regenerates the Section III-A communication-volume
// claim with real transports and byte accounting.
func BenchmarkCommVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.CommVolume(experiments.CommVolumeOptions{Clients: 2, Rounds: 2})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == core.AlgoICEADMM {
				b.ReportMetric(r.UploadPerClientRound, "iceadmm-models/round")
			}
			if r.Algorithm == core.AlgoIIADMM {
				b.ReportMetric(r.UploadPerClientRound, "iiadmm-models/round")
			}
		}
	}
}

// BenchmarkPipeline measures the headline win of the composable update
// pipeline: uploaded bytes per round with and without compression stages,
// on a real transport with byte-accurate accounting. Reported metrics:
// dense-B/round (no compression), topk-B/round / quant-B/round / f16-B/round
// (compressed stacks), and topk-reduction-x — the dense/topk ratio, which
// the acceptance bar puts at >= 4x for topk:0.1.
func BenchmarkPipeline(b *testing.B) {
	fed := MNISTFederation(4, 256, 64, 23)
	factory := MLPFactory(28*28, []int{16}, 10, 23)
	const rounds = 2
	run := func(pipe string) float64 {
		cfg := Config{
			Algorithm: AlgoFedAvg, Rounds: rounds, LocalSteps: 1, BatchSize: 32,
			Seed: 23, Pipeline: pipe,
		}
		res, err := Run(cfg, fed, factory, RunOptions{Transport: TransportRPC})
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.UploadsB) / rounds
	}
	var dense, topk, quant, f16 float64
	for i := 0; i < b.N; i++ {
		dense = run("clip:1")
		topk = run("clip:1,topk:0.1")
		quant = run("clip:1,quantize:8")
		f16 = run("clip:1,f16")
	}
	b.ReportMetric(dense, "dense-B/round")
	b.ReportMetric(topk, "topk-B/round")
	b.ReportMetric(quant, "quant-B/round")
	b.ReportMetric(f16, "f16-B/round")
	b.ReportMetric(dense/topk, "topk-reduction-x")
	b.ReportMetric(dense/quant, "quant-reduction-x")
}

// BenchmarkKWayFold measures the batched aggregation kernel against the
// per-update two-sweep fold it replaced, at the cohort size (K=8) and
// model scale (1M parameters) of the perf suite. Sub-benchmarks:
//
//	TwoSweep — the pre-kernel path: zero sweep + one accumulator sweep
//	           per update (K+1 passes over the accumulator);
//	FoldK    — the cache-blocked batched kernel (one pass);
//	Fused    — FoldKSrc folding still-encoded float16 payloads, versus
//	           which TwoSweep would additionally pay a densify pass.
//
// Each reports Melem/s (K·dim elements per fold). The acceptance bar is
// FoldK ≥ 1.5× TwoSweep on the CI bench machine; CI runs this with
// -cpu 1,4 so both serial and parallel numbers land in the artifact.
func BenchmarkKWayFold(b *testing.B) {
	const (
		dim = 1 << 20
		k   = 8
	)
	srcs := make([][]float64, k)
	weights := make([]float64, k)
	for j := range srcs {
		r := rng.New(uint64(300 + j))
		v := make([]float64, dim)
		for i := range v {
			v[i] = r.Float64() - 0.5
		}
		srcs[j] = v
		weights[j] = 1.0 / k
	}
	dst := make([]float64, dim)
	elems := float64(k * dim)

	b.Run("TwoSweep", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for j := range dst {
				dst[j] = 0
			}
			for kk, src := range srcs {
				w := weights[kk]
				for j, v := range src {
					dst[j] += w * v
				}
			}
		}
		b.ReportMetric(elems*float64(b.N)/time.Since(start).Seconds()/1e6, "Melem/s")
	})
	b.Run("FoldK", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			tensor.FoldK(dst, 0, dim, srcs, weights)
		}
		b.ReportMetric(elems*float64(b.N)/time.Since(start).Seconds()/1e6, "Melem/s")
	})

	fsrcs := make([]tensor.FoldSrc, k)
	for j, v := range srcs {
		codes := make([]byte, 2*dim)
		for i, x := range v {
			h := wire.Float16FromFloat64(x)
			codes[2*i] = byte(h)
			codes[2*i+1] = byte(h >> 8)
		}
		fsrcs[j] = tensor.FoldSrc{Kind: tensor.SrcF16, Codes: codes, W: weights[j]}
	}
	b.Run("Fused", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			tensor.FoldKSrc(dst, 0, dim, fsrcs)
		}
		b.ReportMetric(elems*float64(b.N)/time.Since(start).Seconds()/1e6, "Melem/s")
	})
}

// BenchmarkAblationFreezeDual isolates the value of dual information: the
// IADMM update with duals frozen at zero degenerates toward FedAvg. The
// metric reported is the accuracy delta from enabling duals.
func BenchmarkAblationFreezeDual(b *testing.B) {
	fed := MNISTFederation(4, 384, 128, 7)
	factory := MLPFactory(28*28, []int{24}, 10, 7)
	for i := 0; i < b.N; i++ {
		run := func(freeze bool) float64 {
			cfg := Config{
				Algorithm:  AlgoIIADMM,
				Rounds:     4,
				LocalSteps: 2,
				BatchSize:  32,
				FreezeDual: freeze,
				Seed:       uint64(i) + 1,
			}
			res, err := Run(cfg, fed, factory, RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			return res.FinalAcc
		}
		with := run(false)
		without := run(true)
		b.ReportMetric(with-without, "dual-acc-delta")
	}
}

// BenchmarkAblationTransports compares the wall time of an identical small
// run over the MPI-style and pub/sub backends.
func BenchmarkAblationTransports(b *testing.B) {
	fed := MNISTFederation(4, 256, 64, 9)
	factory := MLPFactory(28*28, []int{16}, 10, 9)
	cfg := Config{Algorithm: AlgoFedAvg, Rounds: 3, LocalSteps: 1, BatchSize: 32, Seed: 9}
	for _, tr := range []core.Transport{TransportMPI, TransportPubSub} {
		b.Run(string(tr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, fed, factory, RunOptions{Transport: tr}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulerStragglerCohort measures the headline win of the
// Scheduler × Aggregator split: a fixed workload (8 clients, 6 global
// aggregations, one client straggling 40 ms per update) under the
// synchronous barrier versus the FedBuff-style buffered scheduler. The
// barrier pays the straggler every round; buffered releases as soon as
// K=4 updates land, so the straggler delays at most the final drain. The
// reported "speedup-x" is sync wall time over buffered wall time (> 1
// means buffered wins).
func BenchmarkSchedulerStragglerCohort(b *testing.B) {
	const (
		clients        = 8
		rounds         = 6
		stragglerDelay = 40 * time.Millisecond
	)
	fed := MNISTFederation(clients, 512, 64, 17)
	// Drop the test set so no evaluation ever runs inside the timed
	// region: the benchmark measures pure round wall time.
	fed = &Federated{Clients: fed.Clients}
	factory := MLPFactory(28*28, []int{16}, 10, 17)
	delay := func(client, round int) time.Duration {
		if client == clients-1 {
			return stragglerDelay
		}
		return 0
	}
	run := func(cfg Config) float64 {
		start := time.Now()
		if _, err := Run(cfg, fed, factory, RunOptions{ClientDelay: delay}); err != nil {
			b.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	base := Config{Algorithm: AlgoFedAvg, Rounds: rounds, LocalSteps: 1, BatchSize: 32, Seed: 17}
	buffered := base
	buffered.Scheduler = core.SchedBuffered
	buffered.BufferK = 4
	var syncSec, bufSec float64
	for i := 0; i < b.N; i++ {
		syncSec += run(base)
		bufSec += run(buffered)
	}
	n := float64(b.N)
	b.ReportMetric(syncSec/n, "sync-sec/op")
	b.ReportMetric(bufSec/n, "buffered-sec/op")
	b.ReportMetric(syncSec/bufSec, "speedup-x")
}

// BenchmarkShardedAggregate measures the sharded aggregation hot path on
// a 1M-dimension model: the staleness-weighted fold (BufferedAggregator)
// at 1 worker versus 8 workers, reporting element throughput and the
// parallel-vs-serial "speedup-x" headline. Both paths produce
// bit-identical weights (TestShardedAggregationBitIdentical), so the
// speedup is free of precision caveats. On a single-core machine the
// speedup degenerates to ~1x by construction — the deterministic chunking
// never changes results, only wall time.
func BenchmarkShardedAggregate(b *testing.B) {
	const dim = 1 << 20
	w0 := make([]float64, dim)
	z := make([]float64, dim)
	rng.New(3).FillNormal(z, 0, 1)
	batch := []*wire.LocalUpdate{{NumSamples: 64, Primal: z}}
	fold := func(workers, n int) float64 {
		agg, err := core.NewBufferedAggregator(w0, 0.5, 0.5, 0)
		if err != nil {
			b.Fatal(err)
		}
		agg.Workers = workers
		agg.Aggregate(batch) // warm-up: starts pool workers
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := agg.Aggregate(batch); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start).Seconds()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var serialSec, parallelSec float64
	for i := 0; i < b.N; i++ {
		serialSec += fold(1, 4)
		parallelSec += fold(8, 4)
	}
	n := float64(4 * b.N)
	b.ReportMetric(dim*n/serialSec/1e6, "serial-Melem/s")
	b.ReportMetric(dim*n/parallelSec/1e6, "parallel-Melem/s")
	b.ReportMetric(serialSec/parallelSec, "speedup-x")
}

// BenchmarkCodecRoundTrip measures the buffer-reusing wire codec on a 1M-
// dimension dense update — the steady-state path that the wire package's
// alloc tests pin at zero allocations per round-trip.
func BenchmarkCodecRoundTrip(b *testing.B) {
	const dim = 1 << 20
	u := &wire.LocalUpdate{ClientID: 1, Round: 1, NumSamples: 64, Primal: make([]float64, dim)}
	rng.New(5).FillNormal(u.Primal, 0, 1)
	e := wire.NewEncoder(make([]byte, 0, 8*dim+64))
	var out wire.LocalUpdate
	var d wire.Decoder
	e.Reset()
	u.Marshal(e)
	d.Reset(e.Bytes())
	if err := out.Unmarshal(&d); err != nil {
		b.Fatal(err) // warm-up sizes out's reused buffers
	}
	b.SetBytes(int64(2 * e.Len())) // one encode + one decode pass per op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		u.Marshal(e)
		d.Reset(e.Bytes())
		if err := out.Unmarshal(&d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundIIADMM measures one full IIADMM round (4 clients, CNN) —
// the unit of work behind every Fig. 2 cell.
func BenchmarkRoundIIADMM(b *testing.B) {
	fed := MNISTFederation(4, 256, 64, 11)
	factory := CNNFactory(CNNConfig{
		InChannels: 1, Height: 28, Width: 28, Classes: 10,
		Conv1: 4, Conv2: 8, Kernel: 5, Hidden: 32,
	}, 11)
	cfg := Config{Algorithm: AlgoIIADMM, Rounds: 1, LocalSteps: 1, BatchSize: 64, Seed: 11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, fed, factory, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
