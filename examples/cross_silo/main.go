// Cross-silo federated learning over real TCP: a server and three clients
// exchange models through the gRPC-substitute RPC transport (length-
// prefixed frames, protobuf-style codec), all within this process so the
// example is self-contained. The same code paths power cmd/appfl-server
// and cmd/appfl-client across machines.
//
//	go run ./examples/cross_silo
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	appfl "repro"
	"repro/internal/comm/rpc"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/wire"
)

const (
	numClients = 3
	rounds     = 4
)

func main() {
	cfg := appfl.Config{Algorithm: appfl.AlgoIIADMM, Rounds: rounds, LocalSteps: 2, Epsilon: 10, Seed: 2}.WithDefaults()
	fed := appfl.MNISTFederation(numClients, 480, 120, cfg.Seed)
	factory := appfl.CNNFactory(appfl.CNNConfig{
		InChannels: 1, Height: 28, Width: 28, Classes: 10,
		Conv1: 4, Conv2: 8, Hidden: 32,
	}, cfg.Seed)
	evalModel := factory()
	w0 := nn.FlattenParams(evalModel, nil)

	srv, err := rpc.Listen("127.0.0.1:0", rpc.ServerConfig{
		NumClients:    numClients,
		Rounds:        rounds,
		ModelSize:     len(w0),
		AcceptTimeout: 10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server listening on %s\n", srv.Addr())

	// Silo processes: dial in, then answer every broadcast with a local
	// update until the final frame arrives.
	var wg sync.WaitGroup
	master := rng.New(cfg.Seed)
	for i := 0; i < numClients; i++ {
		cr := master.Split()
		wg.Add(1)
		go func(i int, cr *rng.RNG) {
			defer wg.Done()
			model := factory()
			nn.SetParams(model, w0)
			pipe, err := core.NewClientPipeline(cfg, cr)
			if err != nil {
				log.Fatal(err)
			}
			algo, err := core.NewClient(cfg, i, model, fed.Clients[i], w0, pipe, cr)
			if err != nil {
				log.Fatal(err)
			}
			conn, err := rpc.Dial(srv.Addr(), uint32(i), fmt.Sprintf("silo-%d", i))
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			for {
				gm, err := conn.RecvGlobal()
				if err != nil {
					log.Fatal(err)
				}
				if gm.Final {
					return
				}
				up, err := algo.LocalUpdate(int(gm.Round), gm.Weights)
				if err != nil {
					log.Fatal(err)
				}
				if err := conn.SendUpdate(up); err != nil {
					log.Fatal(err)
				}
			}
		}(i, cr)
	}

	if err := srv.Accept(); err != nil {
		log.Fatal(err)
	}
	server, err := core.NewServer(cfg, w0, numClients)
	if err != nil {
		log.Fatal(err)
	}
	for t := 1; t <= rounds; t++ {
		if err := srv.Broadcast(&wire.GlobalModel{Round: uint32(t), Weights: server.GlobalWeights()}); err != nil {
			log.Fatal(err)
		}
		updates, err := srv.Gather()
		if err != nil {
			log.Fatal(err)
		}
		if err := server.Update(updates); err != nil {
			log.Fatal(err)
		}
		loss, acc := core.EvaluateWeights(evalModel, server.GlobalWeights(), fed.Test, 128)
		fmt.Printf("round %d  acc %.4f  loss %.4f\n", t, acc, loss)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	snap := srv.Stats()
	fmt.Printf("TCP traffic at server: sent %d B, received %d B over %d messages\n",
		snap.BytesSent, snap.BytesRecv, snap.MsgsSent+snap.MsgsRecv)
}
