// Serverless federated learning — the paper's future-work item 1:
// "decentralized privacy-preserving algorithms that allow the neighboring
// communication without the central server". Eight clients sit on a ring;
// each round they train locally, exchange Laplace-perturbed models with
// their two neighbors only, and average with Metropolis weights. No
// coordinator ever sees the models, yet the ring reaches consensus and
// learns.
//
//	go run ./examples/decentralized
package main

import (
	"fmt"
	"log"

	appfl "repro"
	"repro/internal/core"
)

func main() {
	const clients = 8
	fed := appfl.MNISTFederation(clients, 640, 160, 11)
	factory := appfl.MLPFactory(28*28, []int{32}, 10, 11)

	cfg := appfl.Config{
		Algorithm:  appfl.AlgoFedAvg, // local solver; aggregation is gossip
		Rounds:     6,
		LocalSteps: 2,
		BatchSize:  32,
		Epsilon:    10, // every exchanged model is ε̄-DP perturbed
		Seed:       11,
	}
	topo := core.Ring(clients)
	fmt.Printf("ring of %d clients, each talking only to 2 neighbors\n\n", clients)
	res, err := core.RunDecentralized(cfg, fed, factory, topo)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rounds {
		fmt.Printf("round %d  mean client accuracy %.4f  consensus distance %.4f\n",
			r.Round, r.MeanTestAcc, r.Consensus)
	}
	fmt.Printf("\nfinal mean accuracy %.2f%% — no server ever existed\n", 100*res.FinalAcc)
}
