// Quickstart: privacy-preserving federated learning in ~20 lines.
//
// Four hospitals jointly train the paper's CNN on (synthetic) MNIST with
// the paper's IIADMM algorithm and ε̄=10 Laplace output perturbation,
// without any raw data leaving a client.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	appfl "repro"
)

func main() {
	fed := appfl.MNISTFederation(4, 960, 240, 1)
	factory := appfl.CNNFactory(appfl.CNNConfig{
		InChannels: 1, Height: 28, Width: 28, Classes: 10,
		Conv1: 4, Conv2: 8, Hidden: 32,
	}, 1)

	res, err := appfl.Run(appfl.Config{
		Algorithm: appfl.AlgoIIADMM,
		Rounds:    8,
		Epsilon:   10, // ε̄-differential privacy on every upload
	}, fed, factory, appfl.RunOptions{Progress: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinal test accuracy: %.2f%% (chance: 10%%)\n", 100*res.FinalAcc)
	fmt.Printf("each client uploaded one %d-parameter model per round — no data, no duals\n", res.ModelDim)
}
