// Chaos testing: deterministic fault injection against the fault-tolerant
// scheduler. A 10-client FedAvg federation trains under a scripted fault
// plan — 20% of clients crash at round 3 — and the run survives: the
// crash round completes via quorum with the 8 reporting clients (their
// aggregation weights renormalized over the survivors), the dead clients
// are benched with exponential backoff so later rounds don't wait out a
// timeout each, and the whole story replays bit-identically from the
// seed.
//
// A second run scripts the graceful flavor: a client announces a goodbye
// at round 3 leasing a return at round 6, so no timeout is ever paid —
// the scheduler simply excludes it for the leased span and re-admits it.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	appfl "repro"
)

func main() {
	const clients = 10
	fed := appfl.MNISTFederation(clients, 800, 200, 31)
	factory := appfl.MLPFactory(28*28, []int{16}, 10, 31)
	base := appfl.Config{
		Algorithm:    appfl.AlgoFedAvg,
		Rounds:       8,
		LocalSteps:   1,
		BatchSize:    32,
		Seed:         31,
		RoundTimeout: 2 * time.Second, // a vanished client costs a deadline, not the run
		MinCohort:    5,               // abort if fewer than half survive a round
	}

	fmt.Println("=== crash 20% of clients at round 3 (plan \"crash:20%@3\") ===")
	inj, err := appfl.ParseFaultPlan("crash:20%@3", clients, 42)
	if err != nil {
		log.Fatal(err)
	}
	for c, r := range inj.Crashes() {
		fmt.Printf("scripted: client %d crashes at round %d\n", c, r)
	}
	crashed, err := appfl.Run(base, fed, factory, appfl.RunOptions{
		Progress: os.Stdout,
		Faults:   inj,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survived: acc %.4f, %d clients presumed dead, %d obligations timed out\n",
		crashed.FinalAcc, crashed.Crashed, crashed.TimedOut)
	fmt.Println("(watch the cohort column: 10 before the crash, 8 surviving afterwards,")
	fmt.Println(" and a dip on the rounds that waited out the benched clients' retries)")

	fmt.Println()
	fmt.Println("=== graceful goodbye + rejoin (plan \"rejoin:4@3+3\") ===")
	inj, err = appfl.ParseFaultPlan("rejoin:4@3+3", clients, 42)
	if err != nil {
		log.Fatal(err)
	}
	rejoined, err := appfl.Run(base, fed, factory, appfl.RunOptions{
		Progress: os.Stdout,
		Faults:   inj,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client 4 left at round 3, leased round 6, rejoined %d time(s); acc %.4f, timeouts %d\n",
		rejoined.Rejoined, rejoined.FinalAcc, rejoined.TimedOut)

	// The baseline without faults, for comparison.
	clean, err := appfl.Run(base, fed, factory, appfl.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("fault-free baseline acc %.4f vs crashed %.4f vs rejoin %.4f\n",
		clean.FinalAcc, crashed.FinalAcc, rejoined.FinalAcc)
}
