// The privacy/utility trade-off of Figure 2, on one dataset: train MNIST
// under ε̄ ∈ {3, 5, 10, ∞} with all three algorithms and print the panel.
// Decreasing ε̄ strengthens privacy and costs accuracy; IIADMM holds up
// best at small ε̄ thanks to its proximal term.
//
//	go run ./examples/mnist_dp
package main

import (
	"fmt"
	"log"
	"math"

	appfl "repro"
	"repro/internal/metrics"
)

func main() {
	fed := appfl.MNISTFederation(4, 640, 160, 3)
	factory := appfl.CNNFactory(appfl.CNNConfig{
		InChannels: 1, Height: 28, Width: 28, Classes: 10,
		Conv1: 4, Conv2: 8, Hidden: 32,
	}, 3)

	table := metrics.NewTable(
		"MNIST test accuracy under varying privacy budgets (cf. Fig. 2, column a)",
		"algorithm", "eps=3", "eps=5", "eps=10", "eps=inf",
	)
	for _, algo := range []string{appfl.AlgoFedAvg, appfl.AlgoICEADMM, appfl.AlgoIIADMM} {
		row := []string{algo}
		for _, eps := range []float64{3, 5, 10, math.Inf(1)} {
			res, err := appfl.Run(appfl.Config{
				Algorithm: algo,
				Rounds:    6,
				Epsilon:   eps,
				Seed:      3,
			}, fed, factory, appfl.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.3f", res.FinalAcc))
		}
		table.AddRow(row...)
	}
	fmt.Println(table.String())
}
