// The privacy/utility trade-off of Figure 2, on one dataset: train MNIST
// under ε̄ ∈ {3, 5, 10, ∞} with all three algorithms and print the panel.
// Decreasing ε̄ strengthens privacy and costs accuracy; IIADMM holds up
// best at small ε̄ thanks to its proximal term.
//
// The second table composes privacy with compression through the update
// pipeline (Config.Pipeline). A stack like
//
//	clip:1,laplace:5,topk:0.1
//
// clips every local gradient at C=1 (bounding the DP sensitivity), adds
// Laplace output noise at ε̄=5, then ships only the top 10% of
// coordinates by magnitude — cutting the uploaded bytes per round about
// 6.6× while the server reconstructs (inverts) the sparse payload before
// aggregation. The trade-off is visible in the printed rows: topk
// sacrifices some accuracy on top of the DP noise in exchange for the
// bandwidth, while quantize:8 is nearly free at an ~8× reduction —
// exactly the upload-bandwidth lever cross-silo deployments need.
//
//	go run ./examples/mnist_dp
package main

import (
	"fmt"
	"log"
	"math"

	appfl "repro"
	"repro/internal/metrics"
)

func main() {
	fed := appfl.MNISTFederation(4, 640, 160, 3)
	factory := appfl.CNNFactory(appfl.CNNConfig{
		InChannels: 1, Height: 28, Width: 28, Classes: 10,
		Conv1: 4, Conv2: 8, Hidden: 32,
	}, 3)

	table := metrics.NewTable(
		"MNIST test accuracy under varying privacy budgets (cf. Fig. 2, column a)",
		"algorithm", "eps=3", "eps=5", "eps=10", "eps=inf",
	)
	for _, algo := range []string{appfl.AlgoFedAvg, appfl.AlgoICEADMM, appfl.AlgoIIADMM} {
		row := []string{algo}
		for _, eps := range []float64{3, 5, 10, math.Inf(1)} {
			res, err := appfl.Run(appfl.Config{
				Algorithm: algo,
				Rounds:    6,
				Epsilon:   eps,
				Seed:      3,
			}, fed, factory, appfl.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.3f", res.FinalAcc))
		}
		table.AddRow(row...)
	}
	fmt.Println(table.String())

	// Privacy × compression: the same run through composable update
	// pipelines, with byte-accurate upload accounting per round.
	pt := metrics.NewTable(
		"\nFedAvg under composed privacy+compression pipelines (6 rounds)",
		"pipeline", "final acc", "upload B/round", "reduction",
	)
	var denseBytes float64
	for _, spec := range []string{
		"clip:1",                    // dense baseline, no noise
		"clip:1,laplace:5",          // DP only
		"clip:1,laplace:5,topk:0.1", // DP + top-10% sparsification
		"clip:1,laplace:5,quantize:8",
		"clip:1,laplace:5,f16",
	} {
		res, err := appfl.Run(appfl.Config{
			Algorithm: appfl.AlgoFedAvg,
			Rounds:    6,
			Pipeline:  spec,
			Seed:      3,
		}, fed, factory, appfl.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		perRound := float64(res.UploadsB) / 6
		if denseBytes == 0 {
			denseBytes = perRound
		}
		pt.AddRow(spec, fmt.Sprintf("%.3f", res.FinalAcc),
			fmt.Sprintf("%.0f", perRound), fmt.Sprintf("%.1fx", denseBytes/perRound))
	}
	fmt.Println(pt.String())
	fmt.Println("clip bounds the sensitivity, laplace spends the budget, topk/quantize/f16 cut the upload;")
	fmt.Println("the server inverts the compression stack before aggregating — privacy noise is never removed.")
}
