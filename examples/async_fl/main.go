// Asynchronous federated learning on heterogeneous hardware — the paper's
// future-work items 1 (async updates) and the Section IV-E load-imbalance
// observation, combined. Three clients run on simulated A100/V100/CPU
// devices: the fast client pushes many updates while the slow one's
// contributions arrive stale and are down-weighted by (1+staleness)^(−γ),
// so the round never blocks on the slowest silo.
//
//	go run ./examples/async_fl
package main

import (
	"fmt"
	"log"
	"sync"

	appfl "repro"
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/nn"
	"repro/internal/rng"
)

func main() {
	fed := appfl.MNISTFederation(3, 480, 160, 8)
	factory := appfl.MLPFactory(28*28, []int{32}, 10, 8)
	ref := factory()
	w0 := nn.FlattenParams(ref, nil)

	srv, err := core.NewAsyncServer(w0, 0.6, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	devices := []hetero.Device{hetero.A100, hetero.V100, hetero.CPU}
	cfg := appfl.Config{Algorithm: appfl.AlgoFedAvg, LocalSteps: 1, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rounds: 1}.WithDefaults()

	var mu sync.Mutex
	var wg sync.WaitGroup
	master := rng.New(cfg.Seed)
	for i, dev := range devices {
		cr := master.Split()
		wg.Add(1)
		go func(i int, dev hetero.Device, cr *rng.RNG) {
			defer wg.Done()
			model := factory()
			nn.SetParams(model, w0)
			pipe, err := core.NewClientPipeline(cfg, cr)
			if err != nil {
				log.Fatal(err)
			}
			client := core.NewFedAvgClient(i, model, fed.Clients[i], cfg, pipe, cr)
			// Faster devices complete more local updates in the same wall
			// time budget: pushes ∝ throughput.
			pushes := int(12 * dev.Throughput / hetero.A100.Throughput)
			if pushes < 2 {
				pushes = 2
			}
			for k := 0; k < pushes; k++ {
				w, version := srv.Pull()
				up, err := client.LocalUpdate(k, w)
				if err != nil {
					log.Fatal(err)
				}
				weight, err := srv.Push(up.Primal, version)
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				fmt.Printf("%-4s push %2d: staleness-adjusted weight %.3f (device: %.2fs/update)\n",
					dev.Name, k+1, weight, dev.Seconds(1))
				mu.Unlock()
			}
		}(i, dev, cr)
	}
	wg.Wait()

	loss, acc := core.EvaluateWeights(ref, srv.Weights(), fed.Test, 128)
	fmt.Printf("\nasync federation applied %d updates; accuracy %.2f%% loss %.4f\n",
		srv.Version(), 100*acc, loss)
	fmt.Printf("A100 is %.2fx faster than V100 (paper §IV-E: 1.64x) — async keeps it busy\n",
		hetero.A100.SpeedupOver(hetero.V100))
}
