// Non-IID federated learning at FEMNIST scale: one client per handwriting
// "writer", each with its own style and a skewed 12-of-62-class label
// distribution, as in the paper's Summit experiments (203 writers; scaled
// down here — raise -writers for the full geometry).
//
//	go run ./examples/femnist_noniid [-writers 203]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	appfl "repro"
)

func main() {
	writers := flag.Int("writers", 24, "number of FEMNIST writers (paper: 203)")
	rounds := flag.Int("rounds", 6, "communication rounds")
	flag.Parse()

	fed := appfl.FEMNISTFederation(*writers, 16, 400, 5)
	factory := appfl.CNNFactory(appfl.CNNConfig{
		InChannels: 1, Height: 28, Width: 28, Classes: 62,
		Conv1: 4, Conv2: 8, Hidden: 48,
	}, 5)

	// Show the heterogeneity the algorithm must cope with.
	fmt.Printf("federation: %d writers, %d training samples total\n", fed.NumClients(), fed.TotalTrain())
	for _, w := range []int{0, 1, 2} {
		classes := map[int]bool{}
		ds := fed.Clients[w]
		for i := 0; i < ds.Len(); i++ {
			_, y := ds.Sample(i)
			classes[y] = true
		}
		fmt.Printf("  writer %d: %d samples covering %d of 62 classes\n", w, ds.Len(), len(classes))
	}

	res, err := appfl.Run(appfl.Config{
		Algorithm:  appfl.AlgoIIADMM,
		Rounds:     *rounds,
		LocalSteps: 4,
		Seed:       5,
	}, fed, factory, appfl.RunOptions{Progress: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal accuracy on the shared test set: %.2f%% (chance: %.1f%%)\n",
		100*res.FinalAcc, 100.0/62)
}
