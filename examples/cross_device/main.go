// Cross-device federated learning with true partial participation — the
// regime the Scheduler × Aggregator split exists for. A 16-client
// federation trains FedAvg, but each round the sampled-cohort scheduler
// picks only a quarter of the clients: the rest receive no model and
// spend neither compute nor bandwidth, unlike the legacy ClientFraction
// path where every client downloads the model just to echo it back.
//
// A second run uses the FedBuff-style buffered scheduler with one
// simulated straggler: aggregations release as soon as K updates land, so
// the slow device never blocks a round and its late updates are folded in
// down-weighted by staleness.
//
//	go run ./examples/cross_device
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	appfl "repro"
)

func main() {
	const clients = 16
	fed := appfl.MNISTFederation(clients, 1600, 320, 21)
	factory := appfl.MLPFactory(28*28, []int{32}, 10, 21)

	fmt.Println("=== sampled cohorts: 4 of 16 clients per round ===")
	sampled, err := appfl.Run(appfl.Config{
		Algorithm:      appfl.AlgoFedAvg,
		Rounds:         8,
		LocalSteps:     1,
		BatchSize:      32,
		Seed:           21,
		Scheduler:      appfl.SchedSampled,
		CohortFraction: 0.25,
	}, fed, factory, appfl.RunOptions{Progress: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	full, err := appfl.Run(appfl.Config{
		Algorithm:  appfl.AlgoFedAvg,
		Rounds:     8,
		LocalSteps: 1,
		BatchSize:  32,
		Seed:       21,
	}, fed, factory, appfl.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsampled cohort: acc %.3f, uploads %8d B\n", sampled.FinalAcc, sampled.UploadsB)
	fmt.Printf("all clients:    acc %.3f, uploads %8d B\n", full.FinalAcc, full.UploadsB)
	fmt.Printf("traffic saved by scheduling: %.0f%%\n\n",
		100*(1-float64(sampled.UploadsB)/float64(full.UploadsB)))

	fmt.Println("=== buffered semi-async: release every K=4 arrivals, client 15 is slow ===")
	buffered, err := appfl.Run(appfl.Config{
		Algorithm:  appfl.AlgoFedAvg,
		Rounds:     8,
		LocalSteps: 1,
		BatchSize:  32,
		Seed:       21,
		Scheduler:  appfl.SchedBuffered,
		BufferK:    4,
	}, fed, factory, appfl.RunOptions{
		Progress: os.Stdout,
		ClientDelay: func(client, round int) time.Duration {
			if client == 15 {
				return 100 * time.Millisecond // a phone on a bad link
			}
			return 0
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbuffered: acc %.3f, %d stale updates folded, %d dropped\n",
		buffered.FinalAcc, buffered.Stale, buffered.Dropped)
}
