// Why federated learning alone is not private — and how APPFL's Laplace
// mechanism fixes it. The paper (Section II-A.2, citing Geiping et al.)
// notes that "one can recover an original image with high accuracy using
// only gradients sent to the server". This example mounts exactly that
// attack against a linear model's gradient, then repeats it against the
// differentially private release at several ε̄ and prints how the
// reconstruction degrades.
//
//	go run ./examples/gradient_inversion
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

func main() {
	model := nn.NewLinearModel(28*28, 10, rng.New(1))
	train, _ := dataset.MNIST(dataset.SynthConfig{Train: 4, Test: 1, Seed: 2})
	x, y := train.Sample(0)

	gradW, gradB, err := attack.GradientsOf(model, x, y)
	if err != nil {
		log.Fatal(err)
	}

	// The honest-but-curious server inverts the clean gradient.
	rec, recLabel, err := attack.InvertLinearGradient(gradW, gradB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without DP:  reconstruction error %.2e, label recovered: %v (true: %d)\n",
		attack.ReconstructionError(x.Data(), rec), recLabel, y)
	fmt.Println("             → the private training image leaks essentially exactly.")

	table := metrics.NewTable("\nwith Laplace output perturbation (sensitivity 0.1):",
		"epsilon", "reconstruction error", "attack outcome")
	noiseRng := rng.New(3)
	for _, eps := range []float64{10, 5, 3, 1} {
		mech, err := dp.NewLaplace(eps, noiseRng.Split())
		if err != nil {
			log.Fatal(err)
		}
		nw, nb := gradW.Clone(), gradB.Clone()
		mech.Perturb(nw.Data(), 0.1)
		mech.Perturb(nb.Data(), 0.1)
		nrec, _, err := attack.InvertLinearGradient(nw, nb)
		if err != nil {
			log.Fatal(err)
		}
		e := attack.ReconstructionError(x.Data(), nrec)
		verdict := "image still recognizable"
		if e > 0.5 {
			verdict = "reconstruction destroyed"
		}
		table.AddRow(fmt.Sprintf("%g", eps), fmt.Sprintf("%.3f", e), verdict)
	}
	fmt.Println(table.String())
	fmt.Println("smaller ε̄ → more noise → stronger privacy, the trade-off of Fig. 2.")
}
