package appfl_test

import (
	"fmt"
	"log"

	appfl "repro"
)

// ExampleMNISTFederation shows how a corpus is split across clients.
func ExampleMNISTFederation() {
	fed := appfl.MNISTFederation(4, 100, 20, 1)
	fmt.Println(fed.NumClients(), fed.TotalTrain(), fed.Test.Len())
	// Output: 4 100 20
}

// ExampleRun trains a small private federation end to end.
func ExampleRun() {
	fed := appfl.MNISTFederation(2, 64, 16, 1)
	factory := appfl.MLPFactory(28*28, []int{8}, 10, 1)
	res, err := appfl.Run(appfl.Config{
		Algorithm:  appfl.AlgoIIADMM,
		Rounds:     2,
		LocalSteps: 1,
		BatchSize:  32,
		Epsilon:    10,
	}, fed, factory, appfl.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Rounds), res.ModelDim > 0)
	// Output: 2 true
}
