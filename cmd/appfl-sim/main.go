// Command appfl-sim runs one configurable federated-learning simulation —
// the equivalent of APPFL's MPI simulation driver. All clients run as
// goroutines in this process against the selected transport backend.
//
// Example:
//
//	appfl-sim -algorithm iiadmm -dataset mnist -clients 4 -rounds 10 -eps 10
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	appfl "repro"
	"repro/internal/core"
)

func main() {
	algorithm := flag.String("algorithm", "iiadmm", "fedavg | iceadmm | iiadmm")
	ds := flag.String("dataset", "mnist", "mnist | cifar10 | femnist | coronahack")
	clients := flag.Int("clients", 4, "number of clients (FEMNIST: writers)")
	rounds := flag.Int("rounds", 10, "communication rounds T")
	localSteps := flag.Int("local-steps", 10, "local steps/epochs L")
	batch := flag.Int("batch", 64, "local mini-batch size")
	eps := flag.Float64("eps", 0, "privacy budget epsilon (0 = non-private)")
	pipe := flag.String("pipeline", "", "update-pipeline spec, e.g. clip:1,laplace:0.5,topk:0.1 (mutually exclusive with -eps)")
	downF16 := flag.Bool("downlink-f16", false, "broadcast the global model as float16 (~4x downlink cut)")
	train := flag.Int("train", 960, "training samples")
	test := flag.Int("test", 240, "test samples")
	seed := flag.Uint64("seed", 1, "master seed")
	transport := flag.String("transport", "mpi", "mpi | pubsub | rpc")
	scheduler := flag.String("scheduler", "syncall", "syncall | sampled | buffered")
	cohortFraction := flag.Float64("cohort-fraction", 0.25, "sampled: fraction of clients per round")
	cohortMin := flag.Int("cohort-min", 1, "sampled: minimum cohort size")
	bufferK := flag.Int("buffer-k", 0, "buffered: updates per release (0 = half the clients)")
	maxStaleness := flag.Int("max-staleness", 0, "buffered: drop updates staler than this many releases (0 = keep all)")
	alpha := flag.Float64("alpha", 0, "buffered: base mixing rate (0 = default 0.6)")
	gamma := flag.Float64("gamma", 0, "buffered: staleness-decay exponent (0 = default 0.5)")
	faultPlan := flag.String("faults", "", `fault-injection plan, e.g. "crash:20%@3,drop:0:0.3" (see README)`)
	faultSeed := flag.Uint64("fault-seed", 42, "seed driving the fault plan's random choices")
	roundTimeout := flag.Duration("round-timeout", 0, "server deadline per round (0 = wait forever; required to survive crash faults)")
	minCohort := flag.Int("min-cohort", 0, "quorum: minimum survivors a deadline-cut round may aggregate (0 = 1)")
	aggWorkers := flag.Int("agg-workers", 0, "sharded aggregation width (0 = GOMAXPROCS, 1 = serial; bit-identical results at any width)")
	aggPrecision := flag.String("agg-precision", appfl.AggF64, "aggregation accumulator precision: f64 (bit-identical default) or f32 (FedAvg family only)")
	aggShards := flag.Int("shards", 0, "hierarchical aggregation tier width (0/1 = single aggregator; FedAvg family only, bit-identical at any width)")
	chunk := flag.Int("chunk", 0, "stream uplinks as chunks of this many coordinates (0 = monolithic; FedAvg barrier schedulers only, bit-identical)")
	subset := flag.Float64("subset", 0, "LoRA-style partial uploads: fraction of coordinates each client sends (0 = dense; FedAvg only)")
	flag.Parse()

	// Same rule Config.Validate enforces, surfaced before any dataset is
	// generated so flag misuse fails fast.
	if *pipe != "" && *eps > 0 {
		fmt.Fprintln(os.Stderr, "appfl-sim: -pipeline and -eps both configure noise; set the budget in the pipeline spec only")
		os.Exit(2)
	}

	epsVal := math.Inf(1)
	if *eps > 0 {
		epsVal = *eps
	}

	var fed *appfl.Federated
	var factory appfl.Factory
	switch *ds {
	case "mnist":
		fed = appfl.MNISTFederation(*clients, *train, *test, *seed)
		factory = appfl.CNNFactory(appfl.CNNConfig{InChannels: 1, Height: 28, Width: 28, Classes: 10, Conv1: 4, Conv2: 8, Hidden: 32}, *seed)
	case "cifar10":
		fed = appfl.CIFAR10Federation(*clients, *train, *test, *seed)
		factory = appfl.CNNFactory(appfl.CNNConfig{InChannels: 3, Height: 32, Width: 32, Classes: 10, Conv1: 4, Conv2: 8, Hidden: 32}, *seed)
	case "coronahack":
		fed = appfl.CoronaHackFederation(*clients, *train, *test, *seed)
		factory = appfl.CNNFactory(appfl.CNNConfig{InChannels: 1, Height: 64, Width: 64, Classes: 3, Conv1: 4, Conv2: 8, Hidden: 32}, *seed)
	case "femnist":
		spw := *train / *clients
		if spw < 4 {
			spw = 4
		}
		fed = appfl.FEMNISTFederation(*clients, spw, *test, *seed)
		factory = appfl.CNNFactory(appfl.CNNConfig{InChannels: 1, Height: 28, Width: 28, Classes: 62, Conv1: 4, Conv2: 8, Hidden: 32}, *seed)
	default:
		fmt.Fprintf(os.Stderr, "appfl-sim: unknown dataset %q\n", *ds)
		os.Exit(2)
	}

	cfg := appfl.Config{
		Algorithm:      *algorithm,
		Rounds:         *rounds,
		LocalSteps:     *localSteps,
		BatchSize:      *batch,
		Epsilon:        epsVal,
		Pipeline:       *pipe,
		DownlinkF16:    *downF16,
		Seed:           *seed,
		Scheduler:      *scheduler,
		CohortFraction: *cohortFraction,
		CohortMin:      *cohortMin,
		BufferK:        *bufferK,
		MaxStaleness:   *maxStaleness,
		AsyncAlpha:     *alpha,
		AsyncGamma:     *gamma,
		RoundTimeout:   *roundTimeout,
		MinCohort:      *minCohort,
		AggWorkers:     *aggWorkers,
		AggPrecision:   *aggPrecision,
		AggShards:      *aggShards,
		StreamChunk:    *chunk,
		SubsetFrac:     *subset,
	}
	if *scheduler != appfl.SchedSampled {
		cfg.CohortFraction = 0
		cfg.CohortMin = 0
	}
	var inj *appfl.FaultInjector
	if *faultPlan != "" {
		var err error
		inj, err = appfl.ParseFaultPlan(*faultPlan, fed.NumClients(), *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "appfl-sim:", err)
			os.Exit(2)
		}
	}
	fmt.Printf("appfl-sim: %s on %s, %d clients, T=%d, L=%d, eps=%v, pipeline=%q, transport=%s, scheduler=%s\n",
		*algorithm, *ds, fed.NumClients(), *rounds, *localSteps, *eps, *pipe, *transport, *scheduler)
	res, err := appfl.Run(cfg, fed, factory, appfl.RunOptions{
		Transport: core.Transport(*transport),
		Progress:  os.Stdout,
		Faults:    inj,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "appfl-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("final accuracy %.4f  loss %.4f  model dim %d\n", res.FinalAcc, res.FinalLoss, res.ModelDim)
	fmt.Printf("traffic: uploads %d B, downloads %d B (%.2f models/client/round up)\n",
		res.UploadsB, res.DownloadsB,
		float64(res.UploadsB)/float64(fed.NumClients()*(*rounds)*8*res.ModelDim))
	if res.Stale > 0 || res.Dropped > 0 {
		fmt.Printf("staleness: %d stale updates folded, %d dropped beyond the bound\n", res.Stale, res.Dropped)
	}
	if res.Echoes > 0 {
		fmt.Printf("legacy partial participation: %d zero-weight echoes crossed the wire\n", res.Echoes)
	}
	if res.Crashed > 0 || res.Rejoined > 0 || res.TimedOut > 0 {
		fmt.Printf("faults absorbed: %d presumed dead, %d rejoined, %d timed-out obligations\n",
			res.Crashed, res.Rejoined, res.TimedOut)
	}
}
