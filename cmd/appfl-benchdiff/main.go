// Command appfl-benchdiff is the CI regression gate over the performance
// harness: it diffs a freshly measured BENCH.json against the committed
// BENCH_baseline.json and exits non-zero when any gated metric moved in
// its worse direction by more than the tolerance (or disappeared). The
// comparison is printed as a GitHub-flavored markdown table, so CI can
// tee the output straight into $GITHUB_STEP_SUMMARY.
//
// Usage:
//
//	appfl-benchdiff [-baseline BENCH_baseline.json] [-current results/BENCH.json]
//	                [-tolerance 0.2] [-all]
//
// By default only metrics marked "gated" in the baseline participate:
// machine-independent ratios, byte reductions, and sleep-dominated
// latencies. -all gates every metric, including absolute throughputs —
// useful when baseline and current were measured on the same machine.
//
// When the baseline and current reports record different GOMAXPROCS,
// metrics marked parallel-dependent (parallel speedups and multi-worker
// throughputs) are shown in the table but skipped by the gate — a
// core-count mismatch is not a performance regression. The table
// annotates each skipped row and a warning line states both values.
// The rendering lives in bench.RenderDiff, where it is unit-tested.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	current := flag.String("current", "results/BENCH.json", "freshly measured report")
	tolerance := flag.Float64("tolerance", 0.2, "fractional regression tolerance for gated metrics")
	all := flag.Bool("all", false, "gate every metric, not just those marked gated")
	flag.Parse()

	base, err := bench.ReadReport(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := bench.ReadReport(*current)
	if err != nil {
		fatal(err)
	}
	out, regressions := bench.RenderDiff(base, cur, *tolerance, *all, *baseline)
	fmt.Print(out)
	if regressions > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "appfl-benchdiff:", err)
	os.Exit(1)
}
