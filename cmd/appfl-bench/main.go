// Command appfl-bench regenerates every table and figure of the paper's
// evaluation section and writes the results as plain text and CSV under a
// results directory.
//
// Usage:
//
//	appfl-bench [-only table1|fig2|fig3|fig4|hetero|commvol|scenarios|perf|scale|stream|soak|all]
//	            [-out results] [-scale small|medium|paper] [-json]
//
// An unknown -only value is rejected with the list of valid artifacts
// (it used to match nothing and exit green without producing anything).
//
// The -scale flag trades fidelity for time in the training-based Figure 2
// sweep: "small" finishes in about a minute on a laptop, "paper" uses the
// full geometry (203 FEMNIST writers, 50 rounds) and runs for hours.
//
// The "perf" artifact runs the machine-readable performance harness
// (internal/bench): sharded-aggregation throughput and parallel speedup,
// wire-codec MB/s, pipeline stage cost and compression ratios, and round
// latency under a straggler. With -json the report is also written to
// <out>/BENCH.json — the document CI diffs against BENCH_baseline.json.
//
// The "scale" artifact runs the hierarchical-tier load harness
// (bench.RunScale) at the -scale-clients/-scale-cohort/-scale-shards/
// -scale-admit/-scale-rounds geometry: measured shard fold+reduce
// throughput plus simnet-modelled round-latency percentiles for a
// 100k–1M-client federation.
//
// The "stream" artifact runs the chunked-uplink harness (bench.RunStream)
// at the -dim/-stream-clients/-stream-chunk/-workers geometry: the
// resident chunk-window footprint of a streamed round versus the
// monolithic cohort, and the streamed fold throughput.
//
// The "soak" artifact runs the durability harness (bench.RunSoak): the
// write-ahead journal's per-admit append cost and the crash-recovery
// replay time over a 50-round journal.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// artifacts is the closed set of -only values; "all" runs every one.
var artifacts = []string{"table1", "fig2", "fig3", "fig4", "hetero", "commvol", "scenarios", "perf", "scale", "stream", "soak"}

// slicesContains reports whether xs contains x.
func slicesContains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func main() {
	only := flag.String("only", "all", "artifact to regenerate: "+strings.Join(artifacts, "|")+"|all")
	out := flag.String("out", "results", "output directory")
	scale := flag.String("scale", "small", "fig2 scale: small|medium|paper")
	jsonOut := flag.Bool("json", false, "write the perf report to <out>/BENCH.json")
	dim := flag.Int("dim", 1<<20, "model dimension of the perf probes")
	workers := flag.Int("workers", 8, "sharded width of the parallel perf probes")
	scaleClients := flag.Int("scale-clients", 100_000, "federation roster size of the scale harness")
	scaleCohort := flag.Int("scale-cohort", 256, "sampled cohort size per round of the scale harness")
	scaleShards := flag.Int("scale-shards", 8, "aggregation tier width of the scale harness")
	scaleAdmit := flag.Int("scale-admit", 0, "per-round admission cap of the scale harness (0 = unlimited)")
	scaleRounds := flag.Int("scale-rounds", 200, "virtual rounds the scale harness simulates")
	streamClients := flag.Int("stream-clients", 8, "cohort size of the stream harness")
	streamChunk := flag.Int("stream-chunk", 16384, "chunk size in coordinates of the stream harness")
	printProcs := flag.Bool("print-gomaxprocs", false, "print the effective GOMAXPROCS and exit (CI records it next to the bench artifact)")
	flag.Parse()

	if *printProcs {
		fmt.Println(runtime.GOMAXPROCS(0))
		return
	}
	// An unknown -only used to match nothing and exit successfully having
	// produced no artifact — a silently green no-op. Reject it instead.
	if *only != "all" && !slicesContains(artifacts, *only) {
		fatal(fmt.Errorf("unknown -only artifact %q; valid: %s, all", *only, strings.Join(artifacts, ", ")))
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	run := func(name string) bool { return *only == "all" || *only == name }

	if run("perf") {
		rep, err := bench.NewSuite(bench.Options{Dim: *dim, Workers: *workers}).Run()
		if err != nil {
			fatal(err)
		}
		t := metrics.NewTable(
			fmt.Sprintf("Performance harness (dim=%d, workers=%d, GOMAXPROCS=%d)", *dim, *workers, rep.GoMaxProcs),
			"metric", "value", "unit", "direction", "gated")
		for _, m := range rep.Metrics {
			dir := "higher"
			if !m.HigherIsBetter {
				dir = "lower"
			}
			t.AddRowf(m.Name, fmt.Sprintf("%.3f", m.Value), m.Unit, dir, m.Gated)
		}
		emit(*out, "perf", t)
		if *jsonOut {
			path := filepath.Join(*out, "BENCH.json")
			if err := rep.WriteJSON(path); err != nil {
				fatal(err)
			}
			fmt.Printf("perf: wrote %s (%d metrics)\n", path, len(rep.Metrics))
		}
	}
	if run("scale") {
		res, err := bench.RunScale(bench.ScaleOptions{
			Clients:       *scaleClients,
			Cohort:        *scaleCohort,
			Shards:        *scaleShards,
			AdmitPerRound: *scaleAdmit,
			Rounds:        *scaleRounds,
		})
		if err != nil {
			fatal(err)
		}
		emit(*out, "scale", res.Table())
	}
	if run("stream") {
		res, err := bench.RunStream(bench.StreamOptions{
			Dim:     *dim,
			Clients: *streamClients,
			Chunk:   *streamChunk,
			Workers: *workers,
		})
		if err != nil {
			fatal(err)
		}
		emit(*out, "stream", res.Table())
	}
	if run("soak") {
		res, err := bench.RunSoak(bench.SoakOptions{})
		if err != nil {
			fatal(err)
		}
		emit(*out, "soak", res.Table())
	}
	if run("table1") {
		emit(*out, "table1", experiments.Table1())
	}
	if run("fig3") {
		_, t := experiments.Fig3(experiments.Fig3Options{})
		emit(*out, "fig3", t)
	}
	if run("fig4") {
		res, t := experiments.Fig4(experiments.Fig4Options{MeasureCodec: true})
		emit(*out, "fig4", t)
		fmt.Printf("fig4: gRPC/MPI mean ratio %.1f, max round spread %.1fx, codec %.0f MB/s\n",
			res.MeanRatio, res.MaxSpread, res.SerializeBps/1e6)
	}
	if run("hetero") {
		_, t := experiments.Hetero()
		emit(*out, "hetero", t)
	}
	if run("commvol") {
		_, t, err := experiments.CommVolume(experiments.CommVolumeOptions{})
		if err != nil {
			fatal(err)
		}
		emit(*out, "commvol", t)
	}
	if run("scenarios") {
		fmt.Println("scenarios: chaos matrix (crash rounds wait out their timeouts; expect ~a minute)...")
		rows, t, err := experiments.Scenarios(experiments.ScenarioOptions{})
		if err != nil {
			fatal(err)
		}
		emit(*out, "scenarios", t)
		crashed, rejoined, timedOut := 0, 0, 0
		for _, r := range rows {
			crashed += r.Crashed
			rejoined += r.Rejoined
			timedOut += r.TimedOut
		}
		fmt.Printf("scenarios: %d runs absorbed %d crashes, %d rejoins, %d timed-out obligations\n",
			len(rows), crashed, rejoined, timedOut)
	}
	if run("fig2") {
		opts := experiments.Fig2Options{}
		switch *scale {
		case "small":
			opts.Rounds = 6
			opts.TrainSize = 384
			opts.TestSize = 128
			opts.Writers = 12
		case "medium":
			opts.Rounds = 15
			opts.TrainSize = 1200
			opts.TestSize = 400
			opts.Writers = 40
		case "paper":
			opts.Rounds = 50
			opts.TrainSize = 12000
			opts.TestSize = 2000
			opts.Writers = 203
		default:
			fatal(fmt.Errorf("unknown scale %q", *scale))
		}
		fmt.Printf("fig2: running %s-scale sweep (this trains 48 federated models)...\n", *scale)
		pts, t, err := experiments.Fig2(opts)
		if err != nil {
			fatal(err)
		}
		emit(*out, "fig2", t)
		// Also write the full per-round trajectories for plotting.
		traj := metrics.NewTable("Figure 2 trajectories", "dataset", "algorithm", "epsilon", "round", "accuracy")
		for _, p := range pts {
			for i, a := range p.AccByRnd {
				traj.AddRowf(p.Dataset, p.Algorithm, p.Epsilon, i+1, a)
			}
		}
		if err := os.WriteFile(filepath.Join(*out, "fig2_trajectories.csv"), []byte(traj.CSV()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("artifacts written to %s/\n", *out)
}

// emit prints a table and writes its .txt and .csv forms.
func emit(dir, name string, t *metrics.Table) {
	fmt.Println(t.String())
	if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(t.String()), 0o644); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(t.CSV()), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "appfl-bench:", err)
	os.Exit(1)
}
