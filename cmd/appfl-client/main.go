// Command appfl-client joins a cross-silo federation served by
// appfl-server. Each client owns one shard of the synthetic corpus,
// derived deterministically from the shared seed — in a real deployment
// this is where an institution's private data would live. Hyperparameter
// flags must match the server's.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	appfl "repro"
	"repro/internal/comm"
	"repro/internal/comm/rpc"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
)

func main() {
	addr := flag.String("addr", "localhost:9000", "server address")
	id := flag.Int("id", 0, "client id in [0, clients)")
	clients := flag.Int("clients", 2, "total clients in the federation")
	algorithm := flag.String("algorithm", "iiadmm", "fedavg | iceadmm | iiadmm")
	rho := flag.Float64("rho", 2, "IADMM penalty rho")
	zeta := flag.Float64("zeta", 14, "IADMM proximity zeta")
	localSteps := flag.Int("local-steps", 10, "local steps L")
	batch := flag.Int("batch", 64, "mini-batch size")
	eps := flag.Float64("eps", 0, "privacy budget (0 = non-private)")
	pipe := flag.String("pipeline", "", "update-pipeline spec, e.g. clip:1,laplace:0.5,topk:0.1 (must match the server)")
	train := flag.Int("train", 960, "total training samples (shared)")
	test := flag.Int("test", 240, "test samples (shared; unused locally)")
	seed := flag.Uint64("seed", 1, "shared seed (must match server)")
	name := flag.String("name", "", "client display name")
	chunk := flag.Int("chunk", 0, "stream the uplink as chunks of this many coordinates (must match the server)")
	subset := flag.Float64("subset", 0, "upload only this coordinate fraction, LoRA-style (must match the server)")
	tenantID := flag.Int("tenant", 0, "tenant id on a multi-tenant server (0 = default tenant; -id/-clients are then local to the tenant)")
	flag.Parse()

	if *id < 0 || *id >= *clients {
		fatal(fmt.Errorf("id %d out of range [0,%d)", *id, *clients))
	}
	if *tenantID < 0 {
		fatal(fmt.Errorf("tenant %d is negative", *tenantID))
	}
	cfg := appfl.Config{
		Algorithm:  *algorithm,
		LocalSteps: *localSteps,
		BatchSize:  *batch,
		Rho:        *rho,
		Zeta:       *zeta,
		Seed:       *seed,
	}.WithDefaults()
	if *eps > 0 {
		cfg.Epsilon = *eps
	}
	cfg.Pipeline = *pipe
	cfg.StreamChunk = *chunk
	cfg.SubsetFrac = *subset
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	fed := appfl.MNISTFederation(*clients, *train, *test, *seed)
	factory := appfl.CNNFactory(appfl.CNNConfig{InChannels: 1, Height: 28, Width: 28, Classes: 10, Conv1: 4, Conv2: 8, Hidden: 32}, *seed)
	model := factory()
	w0 := nn.FlattenParams(model, nil)

	// Per-client deterministic randomness: stream id within the federation.
	master := rng.New(cfg.Seed)
	var cr *rng.RNG
	for i := 0; i <= *id; i++ {
		cr = master.Split()
	}
	clientPipe, err := core.NewClientPipeline(cfg, cr)
	if err != nil {
		fatal(err)
	}
	algo, err := core.NewClient(cfg, *id, model, fed.Clients[*id], w0, clientPipe, cr)
	if err != nil {
		fatal(err)
	}

	display := *name
	if display == "" {
		display = fmt.Sprintf("client-%d", *id)
	}
	conn, err := rpc.DialTenant(*addr, uint32(*tenantID), uint32(*id), display)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	ack := conn.Config()
	fmt.Printf("%s: joined %s (%d clients, %d rounds, dim %d, local data %d samples)\n",
		display, *addr, ack.NumClients, ack.Rounds, ack.ModelSize, fed.Clients[*id].Len())

	for {
		gm, err := conn.RecvGlobal()
		if err != nil {
			fatal(err)
		}
		if gm.Final {
			fmt.Printf("%s: training complete\n", display)
			return
		}
		if err := core.DecodeGlobal(gm); err != nil {
			fatal(err)
		}
		up, err := algo.LocalUpdate(int(gm.Round), gm.Weights)
		if err != nil {
			fatal(err)
		}
		if cfg.SubsetFrac > 0 && len(up.Primal) > 0 {
			up.PrimalP = core.BuildSubsetPayload(up.Primal, cfg.SubsetFrac)
			up.Primal = nil
		}
		if cfg.StreamChunk > 0 {
			// Stream the vector chunk-by-chunk, then settle the round with
			// a slim payload-less update (the runner's exact flow).
			if err := comm.StreamUpload(conn, up, cfg.StreamChunk,
				comm.UploadOptions{AckTimeout: 30 * time.Second, MaxRetries: 3}); err != nil {
				fatal(err)
			}
			up.Primal, up.PrimalP = nil, nil
		}
		if err := conn.SendUpdate(up); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: round %d uploaded (%.2fs local compute)\n", display, gm.Round, up.ComputeSec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "appfl-client:", err)
	os.Exit(1)
}
