// Command appfl-server runs the federated-learning server of a real
// cross-silo deployment over TCP RPC (the gRPC-substitute transport).
// Start it first, then launch one appfl-client per silo with matching
// -dataset/-algorithm/-seed flags; the shared seed is how all parties
// agree on the initial model, exactly as APPFL distributes a common
// starting checkpoint.
//
// Example (server plus two local clients):
//
//	appfl-server -addr :9000 -clients 2 -rounds 5 &
//	appfl-client -addr localhost:9000 -id 0 -clients 2 &
//	appfl-client -addr localhost:9000 -id 1 -clients 2
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	appfl "repro"
	"repro/internal/comm"
	"repro/internal/comm/rpc"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/nn"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", ":9000", "listen address")
	clients := flag.Int("clients", 2, "number of clients to wait for")
	rounds := flag.Int("rounds", 5, "communication rounds")
	algorithm := flag.String("algorithm", "iiadmm", "fedavg | iceadmm | iiadmm")
	rho := flag.Float64("rho", 2, "IADMM penalty rho")
	zeta := flag.Float64("zeta", 14, "IADMM proximity zeta")
	train := flag.Int("train", 960, "total training samples (for validation-set seed parity)")
	test := flag.Int("test", 240, "server-side validation samples")
	seed := flag.Uint64("seed", 1, "shared seed (must match clients)")
	pipe := flag.String("pipeline", "", "update-pipeline spec (must match the clients)")
	downF16 := flag.Bool("downlink-f16", false, "broadcast the global model as float16 (~4x downlink cut)")
	timeout := flag.Duration("accept-timeout", 2*time.Minute, "join deadline")
	aggWorkers := flag.Int("agg-workers", 0, "sharded aggregation width (0 = GOMAXPROCS, 1 = serial)")
	aggPrecision := flag.String("agg-precision", appfl.AggF64, "aggregation accumulator precision: f64 (bit-identical default) or f32 (FedAvg family only)")
	aggShards := flag.Int("shards", 0, "hierarchical aggregation tier width (0/1 = single aggregator; FedAvg family only, bit-identical at any width)")
	chunk := flag.Int("chunk", 0, "gather uplinks as streamed chunks of this many coordinates (0 = monolithic; clients must pass the same -chunk)")
	subset := flag.Float64("subset", 0, "accept LoRA-style partial uploads covering this coordinate fraction (0 = dense; clients must pass the same -subset)")
	journalDir := flag.String("journal", "", "write-ahead round journal directory: crash-recoverable rounds (fedavg only, no -chunk/-subset/-shards)")
	checkpointEvery := flag.Int("checkpoint-every", 10, "compact the journal every k committed rounds (0 = never)")
	savePath := flag.String("save", "", "write the final model checkpoint here (atomic tmp+fsync+rename)")
	tenantsPath := flag.String("tenants", "", "multi-tenant host mode: JSON config listing the federations to serve (see docs/operations.md); incompatible with per-federation flags")
	flag.Parse()

	if *tenantsPath != "" {
		// Tenant mode: every per-federation knob comes from the config file;
		// only host-level flags apply. Reject silently-ignored flags loudly.
		allowed := map[string]bool{"tenants": true, "addr": true, "accept-timeout": true, "journal": true, "checkpoint-every": true}
		flag.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				fatal(fmt.Errorf("-%s does not apply in -tenants mode; set per-tenant options in %s", f.Name, *tenantsPath))
			}
		})
		runTenantHost(*tenantsPath, *addr, *timeout, *journalDir, *checkpointEvery)
		return
	}

	cfg := appfl.Config{Algorithm: *algorithm, Rounds: *rounds, Rho: *rho, Zeta: *zeta, Seed: *seed, Pipeline: *pipe, AggWorkers: *aggWorkers, AggPrecision: *aggPrecision, AggShards: *aggShards, StreamChunk: *chunk, SubsetFrac: *subset}.WithDefaults()
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if *journalDir != "" && (cfg.Algorithm != appfl.AlgoFedAvg || cfg.StreamChunk > 0 || cfg.SubsetFrac > 0 || cfg.AggShards > 1) {
		fatal(fmt.Errorf("-journal requires -algorithm fedavg without -chunk, -subset, or -shards (recovery refolds journaled dense admits)"))
	}
	serverPipe, err := core.NewServerPipeline(cfg)
	if err != nil {
		fatal(err)
	}

	// The validation set and the initial model derive from the shared seed.
	fed := appfl.MNISTFederation(*clients, *train, *test, *seed)
	factory := appfl.CNNFactory(appfl.CNNConfig{InChannels: 1, Height: 28, Width: 28, Classes: 10, Conv1: 4, Conv2: 8, Hidden: 32}, *seed)
	model := factory()
	w0 := nn.FlattenParams(model, nil)

	server, err := core.NewServer(cfg, w0, *clients)
	if err != nil {
		fatal(err)
	}

	// Durable state: open (or re-open) the write-ahead journal and replay
	// it. A non-empty journal means this process is a restart — the model
	// is restored from the last commit, and an in-flight round is finished
	// by re-dispatching it with dedup against the journaled admits.
	var rj *roundJournal
	var pending *core.PendingRound
	startRound := 1
	if *journalDir != "" {
		jnl, err := journal.Open(*journalDir)
		if err != nil {
			fatal(err)
		}
		defer jnl.Close()
		rj = &roundJournal{j: jnl, every: *checkpointEvery}
		recovered, err := core.RecoverServer(jnl.Recovered(), *clients, true)
		if err != nil {
			fatal(err)
		}
		if !recovered.Fresh {
			agg, ok := server.(core.Aggregator)
			if !ok {
				fatal(fmt.Errorf("algorithm %s is not journal-recoverable", cfg.Algorithm))
			}
			if err := recovered.Apply(agg); err != nil {
				fatal(err)
			}
			startRound = recovered.NextRound
			pending = recovered.Pending
			if pending != nil {
				// The crashed process left this round in flight: redo it
				// first, deduplicating against its journaled admits.
				startRound = pending.Round
			}
			fmt.Printf("appfl-server: journal replayed %d records; resuming at round %d\n",
				recovered.Replayed, startRound)
		}
	}
	// Streamed gathers fold chunk-by-chunk through a StreamSession; the
	// slim settling updates still flow through the ordinary Gather so the
	// obligation ledger is untouched (the runner's exact flow).
	var stream *core.StreamSession
	if cfg.StreamChunk > 0 {
		agg, ok := server.(core.Aggregator)
		if !ok {
			fatal(fmt.Errorf("algorithm %s cannot stream chunked uploads", cfg.Algorithm))
		}
		stream, err = core.NewStreamSession(agg)
		if err != nil {
			fatal(err)
		}
	}
	srv, err := rpc.Listen(*addr, rpc.ServerConfig{
		NumClients:    *clients,
		Rounds:        cfg.Rounds,
		ModelSize:     len(w0),
		AcceptTimeout: *timeout,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	fmt.Printf("appfl-server: listening on %s for %d clients (%s, T=%d, dim=%d)\n",
		srv.Addr(), *clients, cfg.Algorithm, cfg.Rounds, len(w0))
	if err := srv.Accept(); err != nil {
		fatal(err)
	}
	fmt.Println("appfl-server: all clients joined")

	versioner, _ := server.(interface{ Version() int })
	version := func() uint64 {
		if versioner == nil {
			return 0
		}
		return uint64(versioner.Version())
	}
	for t := startRound; t <= cfg.Rounds; t++ {
		// A redone round (crash recovery) keeps its original journal
		// entries: its RoundStart is already on disk and the admits
		// journaled before the crash win over their recomputations.
		var skip map[int]bool
		var journaled []*wire.LocalUpdate
		if pending != nil && t == pending.Round {
			skip = pending.AdmittedSet()
			journaled = pending.Admitted
			pending = nil
		} else if err := rj.roundStart(t, *clients, version()); err != nil {
			fatal(err)
		}
		gm := &wire.GlobalModel{Round: uint32(t), Weights: server.GlobalWeights()}
		if *downF16 {
			if err := core.EncodeDownlinkF16(gm); err != nil {
				fatal(err)
			}
		}
		if err := srv.Broadcast(gm); err != nil {
			fatal(err)
		}
		if stream != nil {
			cohort := make([]int, *clients)
			for i := range cohort {
				cohort[i] = i
			}
			if _, err := comm.StreamGather(srv, cohort, uint32(t), len(w0), cfg.StreamChunk,
				stream.Begin, stream.FoldPayloads); err != nil {
				fatal(err)
			}
			if _, err := srv.Gather(); err != nil { // slim updates settle the round
				fatal(err)
			}
			if err := stream.Finish(); err != nil {
				fatal(err)
			}
		} else {
			updates, err := srv.Gather()
			if err != nil {
				fatal(err)
			}
			if err := core.DecodeUpdates(updates, serverPipe, len(w0), cfg.AggWorkers); err != nil {
				fatal(err)
			}
			// Journal-before-effect: every update folds only after its dense
			// primal is durable. On a redone round the journaled admits win
			// over their recomputations (dedup by client x round).
			if err := rj.admits(t, updates, skip); err != nil {
				fatal(err)
			}
			if len(skip) > 0 {
				merged := journaled
				for _, u := range updates {
					if !skip[int(u.ClientID)] {
						merged = append(merged, u)
					}
				}
				updates = merged
			}
			if err := server.Update(updates); err != nil {
				fatal(err)
			}
			if err := rj.commit(t, server.GlobalWeights(), version()); err != nil {
				fatal(err)
			}
		}
		loss, acc := core.EvaluateWeights(model, server.GlobalWeights(), fed.Test, 128)
		fmt.Printf("round %3d  acc %.4f  loss %.4f\n", t, acc, loss)
	}
	if err := srv.Broadcast(&wire.GlobalModel{Final: true}); err != nil {
		fatal(err)
	}
	if *savePath != "" {
		nn.SetParams(model, server.GlobalWeights())
		var buf bytes.Buffer
		if err := nn.SaveParams(&buf, model); err != nil {
			fatal(err)
		}
		if err := journal.AtomicWriteFile(*savePath, buf.Bytes(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("appfl-server: model checkpoint saved to %s\n", *savePath)
	}
	snap := srv.Stats()
	fmt.Printf("appfl-server: done; sent %d B, received %d B\n", snap.BytesSent, snap.BytesRecv)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "appfl-server:", err)
	os.Exit(1)
}
