package main

import (
	"fmt"

	"repro/internal/journal"
	"repro/internal/wire"
)

// roundJournal is the CLI server's write-ahead hook, the real-process
// counterpart of the runner's in-process journaling: a round is opened in
// the journal before any client sees the model, every admitted update's
// dense primal is journaled before it folds, and a commit makes the round
// durable. On restart, core.RecoverServer replays the same records. The
// CLI keeps fsync on (NoSync false): a deployed server must survive power
// loss, not just process death.
type roundJournal struct {
	j       *journal.Journal
	every   int // checkpoint every k commits (0 = never)
	commits int
	scratch wire.JournalRecord
}

// roundStart opens round t for the full federation. Journaled BEFORE the
// broadcast: a crash in between re-dispatches an open round, which is
// recoverable, while a dispatched round the journal never heard of is not.
func (rj *roundJournal) roundStart(t, clients int, version uint64) error {
	if rj == nil {
		return nil
	}
	rec := &rj.scratch
	rec.Reset()
	rec.Op = wire.JournalRoundStart
	rec.Round = uint32(t)
	rec.Version = version
	for c := 0; c < clients; c++ {
		rec.Cohort = append(rec.Cohort, uint32(c))
	}
	return rj.j.Append(rec)
}

// admits journals the decoded updates that will fold this round, skipping
// clients whose admits already sit in the journal from a crashed attempt.
func (rj *roundJournal) admits(t int, updates []*wire.LocalUpdate, skip map[int]bool) error {
	if rj == nil {
		return nil
	}
	for _, u := range updates {
		if skip[int(u.ClientID)] {
			continue
		}
		rec := &rj.scratch
		rec.Reset()
		rec.Op = wire.JournalAdmit
		rec.Round = uint32(t)
		rec.ClientID = u.ClientID
		rec.NumSamples = u.NumSamples
		rec.BaseVersion = u.BaseVersion
		rec.Primal = append(rec.Primal, u.Primal...)
		if err := rj.j.Append(rec); err != nil {
			return err
		}
	}
	return nil
}

// commit closes round t with the new global model, compacting the WAL
// into a checkpoint every rj.every commits.
func (rj *roundJournal) commit(t int, w []float64, version uint64) error {
	if rj == nil {
		return nil
	}
	rec := &rj.scratch
	rec.Reset()
	rec.Op = wire.JournalCommit
	rec.Round = uint32(t)
	rec.Version = version
	rec.Weights = append(rec.Weights, w...)
	if err := rj.j.Append(rec); err != nil {
		return err
	}
	rj.commits++
	if rj.every > 0 && rj.commits%rj.every == 0 {
		cp := &wire.JournalCheckpoint{
			NextRound: uint32(t + 1),
			Version:   version,
			Weights:   rec.Weights,
		}
		if err := rj.j.Checkpoint(cp); err != nil {
			return fmt.Errorf("checkpoint after round %d: %w", t, err)
		}
	}
	return nil
}
