package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	appfl "repro"
	"repro/internal/comm/rpc"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/tenant"
	"repro/internal/wire"
)

// tenantSpecJSON is one tenant's entry in the -tenants config file. Zero
// fields take the same defaults as the single-tenant flags.
type tenantSpecJSON struct {
	Name      string  `json:"name"`
	Clients   int     `json:"clients"`
	Rounds    int     `json:"rounds"`
	Algorithm string  `json:"algorithm"`
	Rho       float64 `json:"rho"`
	Zeta      float64 `json:"zeta"`
	Seed      uint64  `json:"seed"`
	Pipeline  string  `json:"pipeline"`
	Train     int     `json:"train"`
	Test      int     `json:"test"`
	// Weight is the tenant's share of the host's fold capacity under
	// contention (values < 1 mean 1).
	Weight int `json:"weight"`
}

// tenantsFileJSON is the -tenants config file: one FL-as-a-service host
// serving every listed federation.
type tenantsFileJSON struct {
	// Slots is the number of folds the host admits concurrently across
	// all tenants (values < 1 mean 1: strict fair alternation).
	Slots   int              `json:"slots"`
	Tenants []tenantSpecJSON `json:"tenants"`
}

func (s tenantSpecJSON) withDefaults(i int) tenantSpecJSON {
	if s.Name == "" {
		s.Name = fmt.Sprintf("tenant-%d", i)
	}
	if s.Clients == 0 {
		s.Clients = 2
	}
	if s.Rounds == 0 {
		s.Rounds = 5
	}
	if s.Algorithm == "" {
		s.Algorithm = "iiadmm"
	}
	if s.Rho == 0 {
		s.Rho = 2
	}
	if s.Zeta == 0 {
		s.Zeta = 14
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Train == 0 {
		s.Train = 960
	}
	if s.Test == 0 {
		s.Test = 240
	}
	return s
}

// hostTenant is one tenant's fully constructed server-side state.
type hostTenant struct {
	spec       tenantSpecJSON
	cfg        appfl.Config
	fed        *appfl.Federated
	model      nn.Module
	w0         []float64
	server     core.ServerAlgorithm
	serverPipe *pipeline.Pipeline
	rj         *roundJournal
	jnl        *journal.Journal
	pending    *core.PendingRound
	startRound int
}

// runTenantHost is appfl-server's -tenants mode: one process, one
// listening socket, N independent federations. Each tenant gets its own
// round loop, journal directory (under -journal, when set), and slice of
// the shared fold capacity; clients address their tenant with
// appfl-client -tenant.
func runTenantHost(path, addr string, timeout time.Duration, journalRoot string, checkpointEvery int) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var file tenantsFileJSON
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	if len(file.Tenants) == 0 {
		fatal(fmt.Errorf("%s lists no tenants", path))
	}

	tenants := make([]*hostTenant, len(file.Tenants))
	tspecs := make([]rpc.TenantSpec, len(file.Tenants))
	weights := make([]int, len(file.Tenants))
	for i, spec := range file.Tenants {
		spec = spec.withDefaults(i)
		cfg := appfl.Config{
			Algorithm: spec.Algorithm, Rounds: spec.Rounds, Rho: spec.Rho,
			Zeta: spec.Zeta, Seed: spec.Seed, Pipeline: spec.Pipeline,
		}.WithDefaults()
		if err := cfg.Validate(); err != nil {
			fatal(fmt.Errorf("tenant %s: %w", spec.Name, err))
		}
		if journalRoot != "" && cfg.Algorithm != appfl.AlgoFedAvg {
			fatal(fmt.Errorf("tenant %s: -journal requires algorithm fedavg", spec.Name))
		}
		pipe, err := core.NewServerPipeline(cfg)
		if err != nil {
			fatal(fmt.Errorf("tenant %s: %w", spec.Name, err))
		}
		fed := appfl.MNISTFederation(spec.Clients, spec.Train, spec.Test, spec.Seed)
		factory := appfl.CNNFactory(appfl.CNNConfig{InChannels: 1, Height: 28, Width: 28,
			Classes: 10, Conv1: 4, Conv2: 8, Hidden: 32}, spec.Seed)
		model := factory()
		w0 := nn.FlattenParams(model, nil)
		server, err := core.NewServer(cfg, w0, spec.Clients)
		if err != nil {
			fatal(fmt.Errorf("tenant %s: %w", spec.Name, err))
		}
		ht := &hostTenant{
			spec: spec, cfg: cfg, fed: fed, model: model, w0: w0,
			server: server, serverPipe: pipe, startRound: 1,
		}
		if journalRoot != "" {
			jnl, err := journal.Open(tenant.JournalDir(journalRoot, i))
			if err != nil {
				fatal(fmt.Errorf("tenant %s: %w", spec.Name, err))
			}
			ht.jnl = jnl
			ht.rj = &roundJournal{j: jnl, every: checkpointEvery}
			recovered, err := core.RecoverServer(jnl.Recovered(), spec.Clients, true)
			if err != nil {
				fatal(fmt.Errorf("tenant %s: %w", spec.Name, err))
			}
			if !recovered.Fresh {
				agg, ok := server.(core.Aggregator)
				if !ok {
					fatal(fmt.Errorf("tenant %s: algorithm %s is not journal-recoverable", spec.Name, cfg.Algorithm))
				}
				if err := recovered.Apply(agg); err != nil {
					fatal(fmt.Errorf("tenant %s: %w", spec.Name, err))
				}
				ht.startRound = recovered.NextRound
				ht.pending = recovered.Pending
				if ht.pending != nil {
					ht.startRound = ht.pending.Round
				}
				fmt.Printf("appfl-server: tenant %s: journal replayed %d records; resuming at round %d\n",
					spec.Name, recovered.Replayed, ht.startRound)
			}
		}
		tenants[i] = ht
		tspecs[i] = rpc.TenantSpec{NumClients: spec.Clients, Rounds: cfg.Rounds, ModelSize: len(w0)}
		weights[i] = spec.Weight
	}

	srv, err := rpc.Listen(addr, rpc.ServerConfig{Tenants: tspecs, AcceptTimeout: timeout})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	total := 0
	for _, ht := range tenants {
		total += ht.spec.Clients
	}
	fmt.Printf("appfl-server: listening on %s for %d tenants (%d clients total)\n",
		srv.Addr(), len(tenants), total)
	if err := srv.Accept(); err != nil {
		fatal(err)
	}
	fmt.Println("appfl-server: all clients of all tenants joined")

	arb := tenant.NewArbiter(file.Slots, weights)
	errs := make([]error, len(tenants))
	var wg sync.WaitGroup
	for i, ht := range tenants {
		wg.Add(1)
		go func(i int, ht *hostTenant) {
			defer wg.Done()
			if ht.jnl != nil {
				defer ht.jnl.Close()
			}
			if err := ht.runRounds(srv.Tenant(i), arb.Gate(i)); err != nil {
				errs[i] = fmt.Errorf("tenant %s: %w", ht.spec.Name, err)
			}
		}(i, ht)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		fatal(err)
	}
	snap := srv.Stats()
	fmt.Printf("appfl-server: done; sent %d B, received %d B\n", snap.BytesSent, snap.BytesRecv)
}

// runRounds drives one tenant's synchronous round loop over its view of
// the shared server — the single-tenant main loop, scoped to the view's
// clients, with the decode+fold gated by the shared arbiter.
func (ht *hostTenant) runRounds(view *rpc.TenantView, gate core.AdmissionGate) error {
	versioner, _ := ht.server.(interface{ Version() int })
	version := func() uint64 {
		if versioner == nil {
			return 0
		}
		return uint64(versioner.Version())
	}
	pending := ht.pending
	for t := ht.startRound; t <= ht.cfg.Rounds; t++ {
		var skip map[int]bool
		var journaled []*wire.LocalUpdate
		if pending != nil && t == pending.Round {
			skip = pending.AdmittedSet()
			journaled = pending.Admitted
			pending = nil
		} else if err := ht.rj.roundStart(t, ht.spec.Clients, version()); err != nil {
			return err
		}
		gm := &wire.GlobalModel{Round: uint32(t), Weights: ht.server.GlobalWeights()}
		if err := view.Broadcast(gm); err != nil {
			return err
		}
		updates, err := view.Gather()
		if err != nil {
			return err
		}
		release := gate.Acquire(len(updates))
		err = func() error {
			if err := core.DecodeUpdates(updates, ht.serverPipe, len(ht.w0), ht.cfg.AggWorkers); err != nil {
				return err
			}
			if err := ht.rj.admits(t, updates, skip); err != nil {
				return err
			}
			if len(skip) > 0 {
				merged := journaled
				for _, u := range updates {
					if !skip[int(u.ClientID)] {
						merged = append(merged, u)
					}
				}
				updates = merged
			}
			if err := ht.server.Update(updates); err != nil {
				return err
			}
			return ht.rj.commit(t, ht.server.GlobalWeights(), version())
		}()
		release()
		if err != nil {
			return err
		}
		loss, acc := core.EvaluateWeights(ht.model, ht.server.GlobalWeights(), ht.fed.Test, 128)
		fmt.Printf("tenant %s  round %3d  acc %.4f  loss %.4f\n", ht.spec.Name, t, acc, loss)
	}
	return view.Broadcast(&wire.GlobalModel{Final: true})
}
