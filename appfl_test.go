package appfl

import (
	"math"
	"testing"
)

func TestFacadeQuickstartPath(t *testing.T) {
	fed := MNISTFederation(2, 128, 64, 1)
	if fed.NumClients() != 2 || fed.TotalTrain() != 128 {
		t.Fatalf("federation geometry: %d clients, %d train", fed.NumClients(), fed.TotalTrain())
	}
	factory := MLPFactory(28*28, []int{16}, 10, 1)
	res, err := Run(Config{
		Algorithm:  AlgoIIADMM,
		Rounds:     2,
		LocalSteps: 1,
		BatchSize:  32,
		Epsilon:    math.Inf(1),
	}, fed, factory, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 || res.ModelDim == 0 {
		t.Fatalf("result incomplete: %+v", res)
	}
}

func TestFacadeFederationBuilders(t *testing.T) {
	cases := []struct {
		name    string
		fed     *Federated
		classes int
		shape   [3]int
	}{
		{"mnist", MNISTFederation(3, 30, 10, 2), 10, [3]int{1, 28, 28}},
		{"cifar10", CIFAR10Federation(3, 30, 10, 2), 10, [3]int{3, 32, 32}},
		{"coronahack", CoronaHackFederation(3, 30, 10, 2), 3, [3]int{1, 64, 64}},
		{"femnist", FEMNISTFederation(5, 6, 10, 2), 62, [3]int{1, 28, 28}},
	}
	for _, c := range cases {
		if c.fed.NumClients() < 3 {
			t.Errorf("%s: %d clients", c.name, c.fed.NumClients())
		}
		ds := c.fed.Clients[0]
		if ds.Classes() != c.classes {
			t.Errorf("%s: %d classes, want %d", c.name, ds.Classes(), c.classes)
		}
		sh := ds.Shape()
		if sh[0] != c.shape[0] || sh[1] != c.shape[1] || sh[2] != c.shape[2] {
			t.Errorf("%s: shape %v, want %v", c.name, sh, c.shape)
		}
		if c.fed.Test == nil || c.fed.Test.Len() == 0 {
			t.Errorf("%s: missing test set", c.name)
		}
	}
}

func TestFacadeCNNFactoryDeterministic(t *testing.T) {
	cfg := CNNConfig{InChannels: 1, Height: 8, Width: 8, Classes: 2, Conv1: 2, Conv2: 2, Kernel: 3, Hidden: 4}
	a := CNNFactory(cfg, 5)()
	b := CNNFactory(cfg, 5)()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !pa[i].Value.EqualWithin(pb[i].Value, 0) {
			t.Fatal("same-seed factories produced different models")
		}
	}
	c := CNNFactory(cfg, 6)()
	if c.Params()[0].Value.EqualWithin(pa[0].Value, 0) {
		t.Fatal("different seeds produced identical models")
	}
}

func TestFacadeTransportsExposed(t *testing.T) {
	fed := MNISTFederation(2, 64, 16, 4)
	factory := MLPFactory(28*28, []int{8}, 10, 4)
	for _, tr := range []struct {
		name string
		opt  RunOptions
	}{
		{"mpi", RunOptions{Transport: TransportMPI}},
		{"pubsub", RunOptions{Transport: TransportPubSub}},
	} {
		res, err := Run(Config{Algorithm: AlgoFedAvg, Rounds: 1, LocalSteps: 1, BatchSize: 32}, fed, factory, tr.opt)
		if err != nil {
			t.Fatalf("%s: %v", tr.name, err)
		}
		if res.UploadsB == 0 {
			t.Fatalf("%s: no traffic recorded", tr.name)
		}
	}
}
