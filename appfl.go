// Package appfl is a Go reproduction of APPFL, the Argonne
// Privacy-Preserving Federated Learning framework (Ryu, Kim, Kim, Madduri;
// IPDPS 2022 workshops, arXiv:2202.03672).
//
// The package is the public facade over the internal implementation. It
// exposes the five plug-and-play component families of the APPFL
// architecture:
//
//   - FL algorithms: FedAvg, ICEADMM, and the paper's communication-
//     efficient IIADMM (Algorithm 1), plus the asynchronous-aggregation and
//     adaptive-penalty extensions from the paper's future-work list.
//   - Differential privacy: Laplace output perturbation with per-algorithm
//     automatic sensitivity, gradient clipping, and a Gaussian mechanism.
//   - Update pipeline: an ordered, composable stack of privacy and
//     compression stages every client release passes through
//     (Config.Pipeline, e.g. "clip:1.0,laplace:0.5,topk:0.1"); the server
//     applies the inverse stack before aggregation. Compression encodings
//     (sparse top-k, stochastic quantization, float16) cut upload bytes
//     4–8x on the real transports.
//   - Communication: in-process MPI collectives, TCP RPC (the gRPC
//     substitute, also usable across machines via cmd/appfl-server and
//     cmd/appfl-client), and an MQTT-style pub/sub broker.
//   - Models: a torch.nn-style layer library with the paper's CNN.
//   - Data: PyTorch-style datasets and loaders with synthetic MNIST,
//     CIFAR-10, FEMNIST (203-writer non-IID), and CoronaHack corpora.
//
// Quick start:
//
//	fed := appfl.MNISTFederation(4, 2000, 500, 1)
//	factory := appfl.CNNFactory(appfl.CNNConfig{
//		InChannels: 1, Height: 28, Width: 28, Classes: 10,
//		Conv1: 4, Conv2: 8, Hidden: 32,
//	}, 1)
//	res, err := appfl.Run(appfl.Config{
//		Algorithm: appfl.AlgoIIADMM,
//		Rounds:    10,
//		Epsilon:   10, // ε̄-differential privacy; math.Inf(1) disables
//	}, fed, factory, appfl.RunOptions{})
package appfl

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Re-exported configuration and result types.
type (
	// Config describes one federated run (algorithm, rounds, privacy, ...).
	Config = core.Config
	// RunOptions selects transport, validation cadence, and parallelism.
	RunOptions = core.RunOptions
	// Result carries per-round statistics and traffic accounting.
	Result = core.Result
	// RoundStats is one communication round of a Result.
	RoundStats = core.RoundStats
	// Federated is a client-partitioned dataset with a shared test set.
	Federated = dataset.Federated
	// CNNConfig shapes the paper's two-conv CNN.
	CNNConfig = nn.CNNConfig
	// Module is the neural-network interface clients train.
	Module = nn.Module
	// Factory builds fresh model replicas for server and clients.
	Factory = nn.Factory
)

// Algorithm identifiers.
const (
	AlgoFedAvg  = core.AlgoFedAvg
	AlgoICEADMM = core.AlgoICEADMM
	AlgoIIADMM  = core.AlgoIIADMM
)

// Scheduler identifiers for Config.Scheduler: the participation policy is
// orthogonal to the algorithm. SchedSyncAll barriers on every client each
// round; SchedSampled schedules a pseudorandom cohort per round (true
// partial participation); SchedBuffered releases an aggregation as soon
// as Config.BufferK updates arrive, FedBuff-style.
const (
	SchedSyncAll  = core.SchedSyncAll
	SchedSampled  = core.SchedSampled
	SchedBuffered = core.SchedBuffered
)

// Transports for RunOptions.Transport.
const (
	TransportMPI    = core.TransportMPI
	TransportPubSub = core.TransportPubSub
	TransportRPC    = core.TransportRPC
)

// Aggregation precisions for Config.AggPrecision. AggF64 (the default)
// keeps the bit-identical double-precision fold; AggF32 is the opt-in
// single-precision accumulator for the FedAvg family — half the memory
// traffic, with the aggregate error bounded by test rather than bit
// identity.
const (
	AggF64 = core.AggF64
	AggF32 = core.AggF32
)

// Run executes a federated simulation under the configured scheduler and
// aggregator; see core.Run.
func Run(cfg Config, fed *Federated, factory Factory, opts RunOptions) (*Result, error) {
	return core.Run(cfg, fed, factory, opts)
}

// FaultInjector is the deterministic chaos layer: it wraps a run's
// transports and executes a scripted fault plan (see ParseFaultPlan).
// Install one via RunOptions.Faults and set Config.RoundTimeout so the
// scheduler survives what the injector throws at it.
type FaultInjector = faults.Injector

// ErrQuorum reports a round that could not assemble Config.MinCohort
// survivors.
var ErrQuorum = core.ErrQuorum

// ParseFaultPlan parses a fault-plan spec such as
//
//	"crash:20%@3,drop:0:0.3,delay:1:10:5,rejoin:2@2+3,reorder"
//
// and resolves it into an injector over numClients clients. Every random
// choice (which clients a percentage picks, which uploads drop, jitter,
// reorder) derives from seed, so the same plan and seed replay the same
// failure story bit for bit. See faults.Parse for the grammar.
func ParseFaultPlan(spec string, numClients int, seed uint64) (*FaultInjector, error) {
	p, err := faults.Parse(spec)
	if err != nil {
		return nil, err
	}
	return faults.NewInjector(p, numClients, seed)
}

// CNNFactory returns a Factory producing the paper's CNN with deterministic
// initialization from seed.
func CNNFactory(cfg CNNConfig, seed uint64) Factory {
	return func() Module { return nn.NewCNN(cfg, rng.New(seed)) }
}

// MLPFactory returns a Factory producing a small multilayer perceptron over
// flattened inputs, useful for fast experimentation.
func MLPFactory(in int, hidden []int, classes int, seed uint64) Factory {
	return func() Module { return nn.NewMLP(in, hidden, classes, rng.New(seed)) }
}

// MNISTFederation builds a synthetic-MNIST federation: train samples split
// IID over the given number of clients, as in the paper's Section IV-A.
func MNISTFederation(clients, train, test int, seed uint64) *Federated {
	tr, te := dataset.MNIST(dataset.SynthConfig{Train: train, Test: test, Seed: seed})
	return &Federated{
		Clients: dataset.PartitionIID(tr, clients, rng.New(seed+1)),
		Test:    te,
	}
}

// CIFAR10Federation builds a synthetic-CIFAR-10 federation split IID.
func CIFAR10Federation(clients, train, test int, seed uint64) *Federated {
	tr, te := dataset.CIFAR10(dataset.SynthConfig{Train: train, Test: test, Seed: seed})
	return &Federated{
		Clients: dataset.PartitionIID(tr, clients, rng.New(seed+1)),
		Test:    te,
	}
}

// CoronaHackFederation builds a synthetic chest-X-ray federation split IID.
func CoronaHackFederation(clients, train, test int, seed uint64) *Federated {
	tr, te := dataset.CoronaHack(dataset.SynthConfig{Train: train, Test: test, Seed: seed})
	return &Federated{
		Clients: dataset.PartitionIID(tr, clients, rng.New(seed+1)),
		Test:    te,
	}
}

// FEMNISTFederation builds the naturally non-IID FEMNIST federation: one
// client per writer (the paper uses 203 writers).
func FEMNISTFederation(writers, samplesPerWriter, test int, seed uint64) *Federated {
	return dataset.FEMNIST(dataset.FEMNISTConfig{
		Writers:          writers,
		SamplesPerWriter: samplesPerWriter,
		SynthConfig:      dataset.SynthConfig{Test: test, Seed: seed},
	})
}
